// Package simd is the simulation server: a long-running HTTP/JSON service
// that accepts (machine spec | named machine, scenario, placement, sampling)
// jobs, streams progress events, and returns the canonical Metrics JSON a
// local simrun would produce — byte for byte. Its headline property is
// robustness under load and failure, composed from the repository's earlier
// fault-tolerance layers:
//
//   - Admission control. A bounded session scheduler (MaxConcurrent
//     simulations × MaxQueued waiting jobs) sheds excess load with 429 +
//     Retry-After instead of collapsing; a per-job instance budget rejects
//     over-sized sessions up front (413), so total memory is bounded by
//     MaxConcurrent × the per-job cap.
//   - Deadlines and cancellation. Every job carries a deadline plumbed into
//     the PR-6 context path; an expired or cancelled job returns structured,
//     clearly-marked partial metrics exactly like `simrun -timeout`.
//   - Request coalescing. Jobs are keyed by the sweep cache content hash
//     (resolved machine spec, scenario, placement, sampling, path).
//     Identical concurrent requests attach to the one in-flight run;
//     identical later requests are served from the shared on-disk cache in
//     one lookup. One key simulates exactly once.
//   - Graceful drain. Drain stops admission, lets in-flight runs finish up
//     to a deadline, parks queued jobs, and demand-checkpoints runs that
//     cannot finish (reusing internal/checkpoint); a restarted server
//     resumes parked jobs to byte-exact results. A worker panic poisons
//     only its job, never the server.
//
// Fault coverage comes from the internal/faultinject server points
// (accept, enqueue, run, cache-write, drain-checkpoint) driven by the
// package's -race soak test.
package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machspec"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Request is the wire format of one simulation job. Its fields are exactly
// the axes of a sweep point, so the job's identity key is the sweep cache
// key: a job submitted to the server and the same point run by cmd/sweep
// share cache entries and coalesce against each other.
type Request struct {
	// Scenario names a registered scenario (required).
	Scenario string `json:"scenario"`
	// Machine names an embedded machine spec ("haswell", "small",
	// "noprefetch"). File paths are not accepted over the wire — a client
	// with a spec file sends its content inline via Spec.
	Machine string `json:"machine,omitempty"`
	// Spec is an inline machine spec document (strict machspec JSON).
	// Mutually exclusive with Machine.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Placement overrides the NUMA page placement policy.
	Placement string `json:"placement,omitempty"`
	// Sampling overrides individual sampling knobs (set fields win).
	Sampling *machspec.Sampling `json:"sampling,omitempty"`
	// Reference selects the per-op reference simulation path.
	Reference bool `json:"reference,omitempty"`
	// TimeoutMs is the job deadline in milliseconds (0: the server
	// default). An expired job returns partial-marked metrics.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Job states. A job is terminal in StateDone, StatePartial, StateFailed or
// StateCheckpointed; StateCheckpointed means the job was parked by a drain
// and will resume when a server restarts over the same state directory.
const (
	StateQueued       = "queued"
	StateRunning      = "running"
	StateDone         = "done"
	StatePartial      = "partial"
	StateFailed       = "failed"
	StateCheckpointed = "checkpointed"
)

// Result sources reported to clients.
const (
	SourceSimulated = "simulated"
	SourceCache     = "cache"
	SourceCoalesced = "coalesced"
)

// Status is the externally visible snapshot of a job.
type Status struct {
	Key       string `json:"key"`
	Scenario  string `json:"scenario"`
	Machine   string `json:"machine,omitempty"`
	State     string `json:"state"`
	Source    string `json:"source,omitempty"`
	Instances uint64 `json:"instances_done,omitempty"`
	Error     string `json:"error,omitempty"`
	// Resumed marks a job restored from a drain checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// Error is a structured admission or execution failure carrying the HTTP
// status the transport layer should speak and an optional back-off hint.
type Error struct {
	Code       int // HTTP status
	Msg        string
	RetryAfter time.Duration
}

func (e *Error) Error() string { return e.Msg }

// Config tunes a Server. The zero value is usable: 2 concurrent
// simulations, 8 queued, no cache, no state directory (drain cancels
// instead of checkpointing), no default deadline.
type Config struct {
	// MaxConcurrent bounds simultaneously running simulations (<=0: 2).
	MaxConcurrent int
	// MaxQueued bounds jobs waiting for a worker (<=0: 8). Beyond it the
	// server sheds load with 429 + Retry-After. Coalesced duplicates do
	// not consume queue slots.
	MaxQueued int
	// CacheDir is the shared metrics cache directory ("" keeps completed
	// results in memory only). The directory may be shared with cmd/sweep
	// and with other servers; writes are atomic and corrupt entries are
	// evicted on read.
	CacheDir string
	// StateDir persists drain checkpoints and parked job requests so a
	// restarted server can resume them ("" disables parking: drained jobs
	// that cannot finish are cancelled with partial results).
	StateDir string
	// DefaultTimeout is the per-job deadline applied when a request does
	// not carry one (0: none). MaxTimeout caps the request value (0: no
	// cap).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobInstances rejects jobs whose instance count (threads × iters,
	// or CG iterations) exceeds the budget (0: unlimited) — the
	// per-session resource bound that keeps one request from monopolizing
	// the fleet.
	MaxJobInstances int
	// RetryAfter is the back-off hint attached to shed responses (<=0: 1s).
	RetryAfter time.Duration
	// Log receives server progress lines (nil: silent).
	Log func(format string, args ...any)
}

// Stats is a point-in-time view of the server counters.
type Stats struct {
	Running   int    `json:"running"`
	Queued    int    `json:"queued"`
	Draining  bool   `json:"draining"`
	Accepted  uint64 `json:"accepted"`
	Coalesced uint64 `json:"coalesced"`
	CacheHits uint64 `json:"cache_hits"`
	Shed      uint64 `json:"shed"`
	Rejected  uint64 `json:"rejected"`
	Simulated uint64 `json:"simulated"`
	Partial   uint64 `json:"partial"`
	Failed    uint64 `json:"failed"`
	Panics    uint64 `json:"panics"`
	Parked    uint64 `json:"parked"`
	Resumed   uint64 `json:"resumed"`
}

// flight is one admitted job: the single execution every coalesced request
// for its key attaches to.
type flight struct {
	key     string
	req     Request
	sc      scenario.Scenario
	opts    scenario.Options // identity options; ctx/checkpoint wired at run time
	machine string           // display name
	timeout time.Duration

	checkpointable bool
	resume         *checkpoint.Snapshot // set when restored from a parked .ck
	resumed        bool

	instances atomic.Uint64 // instance-boundary heartbeat (progress events)
	drain     atomic.Bool   // demand-checkpoint trigger

	mu      sync.Mutex
	state   string
	source  string
	metrics []byte
	err     error
	cancel  context.CancelCauseFunc // non-nil while running
	done    chan struct{}
}

func (f *flight) status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Key:       f.key,
		Scenario:  f.sc.Name,
		Machine:   f.machine,
		State:     f.state,
		Source:    f.source,
		Instances: f.instances.Load(),
		Resumed:   f.resumed,
	}
	if f.err != nil {
		st.Error = f.err.Error()
	}
	return st
}

// terminal reports whether the flight reached a final state.
func (f *flight) terminal() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return terminalState(f.state)
}

func terminalState(s string) bool {
	return s == StateDone || s == StatePartial || s == StateFailed || s == StateCheckpointed
}

// finish moves the flight to a terminal state exactly once.
func (f *flight) finish(state string, metrics []byte, err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if terminalState(f.state) {
		return false
	}
	if state == StateDone && f.source == "" {
		f.source = SourceSimulated
	}
	f.state, f.metrics, f.err, f.cancel = state, metrics, err, nil
	close(f.done)
	return true
}

// result returns the terminal outcome (call after done is closed).
func (f *flight) result() (state string, metrics []byte, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state, f.metrics, f.err
}

// errDrainCancelled is the cancel cause of a hard drain-deadline stop.
var errDrainCancelled = errors.New("simd: server draining, drain deadline reached")

// Server is the simulation service. Create with New, serve via Handler,
// stop with Drain.
type Server struct {
	cfg   Config
	cache *sweep.Cache

	mu       sync.Mutex
	flights  map[string]*flight
	order    []string // terminal-flight retention ring (oldest first)
	queue    []*flight
	running  map[*flight]struct{}
	draining bool
	wg       sync.WaitGroup

	stats struct {
		accepted, coalesced, cacheHits, shed, rejected atomic.Uint64
		simulated, partial, failed, panics             atomic.Uint64
		parked, resumed                                atomic.Uint64
	}
}

// maxRetainedFlights bounds the in-memory record of terminal jobs; results
// beyond it live only in the on-disk cache. Keeps a long-running server's
// memory independent of its request history.
const maxRetainedFlights = 1024

// New builds a server. The cache and state directories are created as
// needed.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:     cfg,
		flights: make(map[string]*flight),
		running: make(map[*flight]struct{}),
	}
	if cfg.CacheDir != "" {
		c, err := sweep.OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("simd: %w", err)
		}
		c.Notice = func(key string, err error) {
			s.logf("simd: cache: evicted corrupt entry %.12s…: %v", key, err)
		}
		s.cache = c
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("simd: %w", err)
		}
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	running, queued, draining := len(s.running), len(s.queue), s.draining
	s.mu.Unlock()
	return Stats{
		Running:   running,
		Queued:    queued,
		Draining:  draining,
		Accepted:  s.stats.accepted.Load(),
		Coalesced: s.stats.coalesced.Load(),
		CacheHits: s.stats.cacheHits.Load(),
		Shed:      s.stats.shed.Load(),
		Rejected:  s.stats.rejected.Load(),
		Simulated: s.stats.simulated.Load(),
		Partial:   s.stats.partial.Load(),
		Failed:    s.stats.failed.Load(),
		Panics:    s.stats.panics.Load(),
		Parked:    s.stats.parked.Load(),
		Resumed:   s.stats.resumed.Load(),
	}
}

// Draining reports whether admission has been stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// resolve validates a request and builds the flight template. All
// rejections are *Error with a 4xx code.
func (s *Server) resolve(req Request) (*flight, error) {
	sc, ok := scenario.Get(req.Scenario)
	if !ok {
		return nil, &Error{Code: 400, Msg: fmt.Sprintf("unknown scenario %q", req.Scenario)}
	}
	if req.Machine != "" && len(req.Spec) > 0 {
		return nil, &Error{Code: 400, Msg: "machine and spec are mutually exclusive"}
	}
	var spec *machspec.Spec
	switch {
	case len(req.Spec) > 0:
		sp, err := machspec.Decode(bytes.NewReader(req.Spec))
		if err != nil {
			return nil, &Error{Code: 400, Msg: fmt.Sprintf("inline machine spec: %v", err)}
		}
		spec = sp
	case req.Machine != "":
		// Named specs only: resolving client-supplied file paths would turn
		// the API into a file-read oracle.
		sp, err := machspec.Named(req.Machine)
		if err != nil {
			return nil, &Error{Code: 400, Msg: fmt.Sprintf("unknown machine %q (send spec files inline via \"spec\")", req.Machine)}
		}
		spec = sp
	}
	opts := scenario.Options{
		Reference: req.Reference,
		Placement: req.Placement,
		Machine:   spec,
		Sampling:  req.Sampling,
	}
	if reason := scenario.SkipReason(sc, opts); reason != "" {
		return nil, &Error{Code: 400, Msg: fmt.Sprintf("unrunnable combination: %s", reason)}
	}
	if budget := s.cfg.MaxJobInstances; budget > 0 {
		if est := estimateInstances(sc); est > budget {
			return nil, &Error{Code: 413, Msg: fmt.Sprintf(
				"job would run %d instances, over the per-session budget of %d", est, budget)}
		}
	}
	key, err := sweep.Key(spec, sc.Name, req.Placement, req.Sampling, req.Reference)
	if err != nil {
		return nil, &Error{Code: 400, Msg: err.Error()}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	machine := ""
	if spec != nil {
		machine = spec.Name
		if machine == "" {
			machine = "custom"
		}
	}
	f := &flight{
		key:     key,
		req:     req,
		sc:      sc,
		opts:    opts,
		machine: machine,
		timeout: timeout,
		state:   StateQueued,
		done:    make(chan struct{}),
	}
	// Demand checkpointing needs the deterministic schedules and somewhere
	// to put the snapshot.
	f.checkpointable = s.cfg.StateDir != "" && scenario.CheckpointSupported(sc, opts)
	return f, nil
}

// estimateInstances is the admission-time cost model: the number of
// instance-boundary units the job will execute.
func estimateInstances(sc scenario.Scenario) int {
	if sc.HPCG != nil {
		return sc.HPCG.MaxIters
	}
	return sc.Threads * sc.Iters
}

// Submit admits a job: it returns the flight serving the key and whether
// this request coalesced onto an already-admitted execution. Shed load and
// invalid requests return *Error.
func (s *Server) Submit(req Request) (*flight, bool, error) {
	if err := faultinject.Hit(faultinject.PointServerAccept); err != nil {
		s.stats.failed.Add(1)
		return nil, false, &Error{Code: 500, Msg: err.Error(), RetryAfter: s.cfg.RetryAfter}
	}
	f, err := s.resolve(req)
	if err != nil {
		s.stats.rejected.Add(1)
		return nil, false, err
	}
	// Shared-cache lookup before admission: identical later requests cost
	// one cache read, no queue slot.
	if b, ok := s.cacheGet(f.key); ok {
		s.stats.cacheHits.Add(1)
		f.state, f.source, f.metrics = StateDone, SourceCache, b
		close(f.done)
		s.remember(f)
		return f, false, nil
	}
	return s.admit(f, false)
}

// admit inserts a resolved flight under the admission rules. resumeRun
// bypasses the drain check (startup resume of parked jobs).
func (s *Server) admit(f *flight, resumeRun bool) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.flights[f.key]; ok && !cur.terminal() {
		// Coalesce: attach to the in-flight execution. Duplicates are free —
		// no queue slot, no simulation.
		s.stats.coalesced.Add(1)
		return cur, true, nil
	}
	if s.draining && !resumeRun {
		s.stats.shed.Add(1)
		return nil, false, &Error{Code: 503, Msg: "server is draining", RetryAfter: s.cfg.RetryAfter}
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		s.stats.shed.Add(1)
		return nil, false, &Error{
			Code:       429,
			Msg:        fmt.Sprintf("%d jobs running and %d queued; try again later", len(s.running), len(s.queue)),
			RetryAfter: s.cfg.RetryAfter,
		}
	}
	if err := faultinject.Hit(faultinject.PointServerEnqueue); err != nil {
		s.stats.failed.Add(1)
		return nil, false, &Error{Code: 500, Msg: err.Error(), RetryAfter: s.cfg.RetryAfter}
	}
	s.stats.accepted.Add(1)
	s.flights[f.key] = f
	s.queue = append(s.queue, f)
	s.dispatchLocked()
	return f, false, nil
}

// remember records a terminal flight for status queries, evicting the
// oldest record beyond the retention cap.
func (s *Server) remember(f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rememberLocked(f)
}

func (s *Server) rememberLocked(f *flight) {
	if _, ok := s.flights[f.key]; !ok {
		s.flights[f.key] = f
	}
	s.order = append(s.order, f.key)
	for len(s.order) > maxRetainedFlights {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.flights[oldest]; ok && old.terminal() {
			delete(s.flights, oldest)
		}
	}
}

// Lookup returns the flight serving key, if the server still remembers it.
func (s *Server) Lookup(key string) (*flight, bool) {
	s.mu.Lock()
	f, ok := s.flights[key]
	s.mu.Unlock()
	if ok {
		return f, true
	}
	// Fall back to the shared cache: a result computed before a restart
	// (or by another server) is still addressable.
	if b, hit := s.cacheGet(key); hit {
		f := &flight{key: key, state: StateDone, source: SourceCache, metrics: b, done: make(chan struct{})}
		close(f.done)
		return f, true
	}
	return nil, false
}

func (s *Server) cacheGet(key string) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	b, ok, err := s.cache.Get(key)
	if err != nil {
		s.logf("simd: cache read %.12s…: %v", key, err)
		return nil, false
	}
	return b, ok
}

// dispatchLocked starts queued flights while worker slots are free. Caller
// holds s.mu. While draining no new flight starts — the drain parks them.
func (s *Server) dispatchLocked() {
	for !s.draining && len(s.queue) > 0 && len(s.running) < s.cfg.MaxConcurrent {
		f := s.queue[0]
		s.queue = s.queue[1:]
		s.running[f] = struct{}{}
		s.wg.Add(1)
		go s.runFlight(f)
	}
}

// runFlight executes one admitted job. Any panic below the scenario stack
// is contained here: it fails this flight and releases its slot, leaving
// the server — and every other session — untouched.
func (s *Server) runFlight(f *flight) {
	defer s.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panics.Add(1)
			s.stats.failed.Add(1)
			f.finish(StateFailed, nil, fmt.Errorf("simd: job panicked: %v", rec))
			s.logf("simd: job %.12s… (%s) panicked: %v", f.key, f.sc.Name, rec)
		}
		s.mu.Lock()
		delete(s.running, f)
		if f.terminal() {
			s.rememberLocked(f)
		}
		s.dispatchLocked()
		s.mu.Unlock()
	}()

	if err := faultinject.Hit(faultinject.PointServerRun); err != nil {
		s.stats.failed.Add(1)
		f.finish(StateFailed, nil, err)
		return
	}

	base := context.Background()
	var timeoutCancel context.CancelFunc
	if f.timeout > 0 {
		base, timeoutCancel = context.WithTimeout(base, f.timeout)
		defer timeoutCancel()
	}
	ctx, cancel := context.WithCancelCause(base)
	defer cancel(nil)
	f.mu.Lock()
	f.state, f.cancel = StateRunning, cancel
	f.mu.Unlock()

	opts := f.opts
	opts.Context = ctx
	if f.checkpointable {
		opts.CheckpointDemand = func() bool {
			f.instances.Add(1)
			return f.drain.Load()
		}
		opts.CheckpointSink = func(snap *checkpoint.Snapshot) error {
			if err := faultinject.Hit(faultinject.PointServerDrain); err != nil {
				return err
			}
			return atomicio.WriteFile(s.snapPath(f.key), func(w io.Writer) error {
				return checkpoint.Write(w, snap)
			})
		}
		opts.Resume = f.resume
	}

	m, err := scenario.Run(f.sc, opts)
	switch {
	case err == nil:
		b, jerr := m.JSON()
		if jerr != nil {
			s.stats.failed.Add(1)
			f.finish(StateFailed, nil, jerr)
			return
		}
		s.cachePut(f.key, b)
		s.stats.simulated.Add(1)
		f.finish(StateDone, b, nil)
		s.clearParked(f.key)
		s.logf("simd: done %.12s… %s (%d instance polls)", f.key, f.sc.Name, f.instances.Load())

	case errors.Is(err, core.ErrCheckpointDemanded):
		// Drain checkpoint taken at an instance boundary; park the request
		// so a restarted server resumes it.
		if perr := s.park(f); perr != nil {
			s.stats.failed.Add(1)
			f.finish(StateFailed, nil, fmt.Errorf("simd: parking drained job: %w", perr))
			return
		}
		s.stats.parked.Add(1)
		f.finish(StateCheckpointed, nil, err)
		s.logf("simd: checkpointed %.12s… %s at instance boundary", f.key, f.sc.Name)

	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), errDrainCancelled):
		// Hard drain stop of a non-checkpointable run: park the request for
		// a from-scratch re-run after restart (when a state dir exists).
		if s.cfg.StateDir != "" {
			if perr := s.park(f); perr == nil {
				s.stats.parked.Add(1)
				f.finish(StateCheckpointed, nil, err)
				return
			}
		}
		s.stats.partial.Add(1)
		f.finish(StatePartial, partialBytes(m), err)

	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The job's own deadline (or a client cancel): partial metrics,
		// clearly marked, exactly like simrun -timeout.
		s.stats.partial.Add(1)
		f.finish(StatePartial, partialBytes(m), err)

	default:
		s.stats.failed.Add(1)
		f.finish(StateFailed, nil, err)
	}
}

// partialBytes serializes partial-marked metrics (nil when the run died
// before producing any).
func partialBytes(m *scenario.Metrics) []byte {
	if m == nil {
		return nil
	}
	b, err := m.JSON()
	if err != nil {
		return nil
	}
	return b
}

func (s *Server) cachePut(key string, b []byte) {
	if s.cache == nil {
		return
	}
	if err := faultinject.Hit(faultinject.PointServerCacheWrite); err != nil {
		// The result is good; only the next lookup loses its hit.
		s.logf("simd: cache write %.12s…: %v", key, err)
		return
	}
	if err := s.cache.Put(key, b); err != nil {
		s.logf("simd: cache write %.12s…: %v", key, err)
	}
}

// State-directory layout: one <key>.job request document per parked job,
// plus <key>.ck when a drain checkpoint was taken. Both written atomically.
func (s *Server) jobPath(key string) string  { return filepath.Join(s.cfg.StateDir, key+".job") }
func (s *Server) snapPath(key string) string { return filepath.Join(s.cfg.StateDir, key+".ck") }

// park persists a job's request so a restarted server re-admits it. The
// snapshot (if any) was already written by the checkpoint sink.
func (s *Server) park(f *flight) error {
	if s.cfg.StateDir == "" {
		return fmt.Errorf("no state directory")
	}
	b, err := json.Marshal(f.req)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(s.jobPath(f.key), func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
}

// clearParked removes a completed job's parked state, if any.
func (s *Server) clearParked(key string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(s.jobPath(key))
	os.Remove(s.snapPath(key))
}

// Resume re-admits every job parked in the state directory: jobs with a
// drain checkpoint continue from their instance boundary (byte-exact with
// an uninterrupted run), jobs without one re-run from scratch, and jobs
// whose key already has a cache entry are completed by one lookup. Call it
// once, after New and before serving traffic. It returns the number of
// jobs re-admitted.
func (s *Server) Resume() (int, error) {
	if s.cfg.StateDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return 0, fmt.Errorf("simd: %w", err)
	}
	resumed := 0
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".job" {
			continue
		}
		key := name[:len(name)-len(".job")]
		b, err := os.ReadFile(s.jobPath(key))
		if err != nil {
			s.logf("simd: resume %.12s…: %v", key, err)
			continue
		}
		var req Request
		if err := json.Unmarshal(b, &req); err != nil {
			// A torn .job (written without atomicio by an older build, or
			// tampered with) cannot be resumed; drop it with a notice
			// rather than refusing to start.
			s.logf("simd: resume %.12s…: corrupt job file, dropping: %v", key, err)
			s.clearParked(key)
			continue
		}
		if b, ok := s.cacheGet(key); ok {
			// Someone (another server, a sweep) finished this key already.
			f := &flight{key: key, state: StateDone, source: SourceCache, metrics: b, done: make(chan struct{})}
			close(f.done)
			s.remember(f)
			s.clearParked(key)
			continue
		}
		f, rerr := s.resolve(req)
		if rerr != nil {
			s.logf("simd: resume %.12s…: %v", key, rerr)
			s.clearParked(key)
			continue
		}
		if snap, ok := s.readSnapshot(key); ok && f.checkpointable {
			f.resume = snap
			f.resumed = true
		}
		if _, _, err := s.admit(f, true); err != nil {
			s.logf("simd: resume %.12s…: %v", key, err)
			continue
		}
		s.stats.resumed.Add(1)
		resumed++
	}
	return resumed, nil
}

// readSnapshot loads a drain checkpoint; a corrupt snapshot is dropped (the
// job re-runs from scratch — slower, never wrong).
func (s *Server) readSnapshot(key string) (*checkpoint.Snapshot, bool) {
	fh, err := os.Open(s.snapPath(key))
	if err != nil {
		return nil, false
	}
	defer fh.Close()
	snap, err := checkpoint.Read(fh)
	if err != nil {
		s.logf("simd: resume %.12s…: corrupt checkpoint, re-running from scratch: %v", key, err)
		os.Remove(s.snapPath(key))
		return nil, false
	}
	return snap, true
}

// Drain gracefully stops the server: admission stops immediately (new jobs
// get 503 + Retry-After), queued jobs are parked, and in-flight jobs run up
// to ctx's deadline — checkpointable runs stop at their next instance
// boundary with a snapshot, the rest either finish or are hard-cancelled at
// the deadline with partial results. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	queued := s.queue
	s.queue = nil
	running := make([]*flight, 0, len(s.running))
	for f := range s.running {
		running = append(running, f)
	}
	s.mu.Unlock()
	if !alreadyDraining {
		s.logf("simd: draining: %d running, %d queued", len(running), len(queued))
	}

	for _, f := range queued {
		// Queued jobs never started; park the request (or cancel when there
		// is nowhere to park it).
		if s.cfg.StateDir != "" {
			if err := s.park(f); err == nil {
				s.stats.parked.Add(1)
				f.finish(StateCheckpointed, nil, errors.New("simd: parked by drain before starting"))
				s.remember(f)
				continue
			}
		}
		s.stats.partial.Add(1)
		f.finish(StatePartial, nil, errDrainCancelled)
		s.remember(f)
	}
	for _, f := range running {
		// Checkpointable runs observe this at their next instance boundary.
		f.drain.Store(true)
	}

	done := make(chan struct{})
	//repro:spawn-ok waits on the worker WaitGroup and closes a channel; no simulation code runs here
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline: hard-cancel whatever is still running; those jobs
	// surface partial results (and are parked for re-run when possible).
	for _, f := range running {
		f.mu.Lock()
		cancel := f.cancel
		f.mu.Unlock()
		if cancel != nil {
			cancel(errDrainCancelled)
		}
	}
	<-done
	return nil
}
