package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/machspec"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// The test scenarios. Registration is per test binary, so these never leak
// into the production registry or the goldens.
//
//   - simd_test_fast: small and quick — the byte-identity and coalescing
//     workhorse.
//   - simd_test_slow: enough iterations (and so instance boundaries) that a
//     drain or a deadline reliably lands mid-run.
//   - simd_test_panic: panics inside the simulated kernel — the containment
//     probe.
func init() {
	mustRegister := func(sc scenario.Scenario) {
		if err := scenario.Register(sc); err != nil {
			panic(err)
		}
	}
	mustRegister(scenario.Scenario{
		Name:        "simd_test_fast",
		Description: "test: small stream",
		Hierarchy:   "small",
		Threads:     1, Iters: 4, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 9) },
	})
	mustRegister(scenario.Scenario{
		Name:        "simd_test_slow",
		Description: "test: paced stream (reliably in flight when drains/deadlines land)",
		Hierarchy:   "small",
		Threads:     1, Iters: 800, Period: 150,
		Workload: func() workloads.PartitionedWorkload {
			return &pacedWorkload{Stream: workloads.NewStream(1 << 11), delay: 200 * time.Microsecond}
		},
	})
	mustRegister(scenario.Scenario{
		Name:        "simd_test_panic",
		Description: "test: kernel panics mid-run",
		Hierarchy:   "small",
		Threads:     1, Iters: 4, Period: 150,
		Workload: func() workloads.PartitionedWorkload {
			return &panicWorkload{Stream: workloads.NewStream(1 << 9)}
		},
	})
}

// pacedWorkload delays each run call by a fixed wall-clock amount without
// touching the simulated instruction stream (the sleep happens outside the
// monitor, so metrics bytes are unchanged). The drain and deadline tests
// need a job that is still in flight when the event lands, with or without
// the race detector's slowdown — simulation speed alone is not a reliable
// clock.
type pacedWorkload struct {
	*workloads.Stream
	delay time.Duration
}

func (p *pacedWorkload) Run(ctx *workloads.Ctx, iters int) error {
	time.Sleep(p.delay)
	return p.Stream.Run(ctx, iters)
}

func (p *pacedWorkload) RunPartition(ctx *workloads.Ctx, iters, lo, hi int) error {
	time.Sleep(p.delay)
	return p.Stream.RunPartition(ctx, iters, lo, hi)
}

func (p *pacedWorkload) RunPartitionRange(ctx *workloads.Ctx, startIter, endIter, lo, hi int) error {
	time.Sleep(p.delay)
	return p.Stream.RunPartitionRange(ctx, startIter, endIter, lo, hi)
}

// panicWorkload sets up like a stream but panics the moment any run method
// executes — the stand-in for a bug in a simulated kernel.
type panicWorkload struct{ *workloads.Stream }

func (p *panicWorkload) Run(ctx *workloads.Ctx, iters int) error {
	panic("simd_test: injected workload panic")
}
func (p *panicWorkload) RunPartition(ctx *workloads.Ctx, iters, lo, hi int) error {
	panic("simd_test: injected workload panic")
}
func (p *panicWorkload) RunPartitionRange(ctx *workloads.Ctx, startIter, endIter, lo, hi int) error {
	panic("simd_test: injected workload panic")
}

// newTestServer builds a Server plus its HTTP front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// localBytes runs the scenario in-process — the reference every server
// result must match byte for byte.
func localBytes(t *testing.T, name string) []byte {
	t.Helper()
	m, err := scenario.RunByName(name, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerByteIdentityAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	c := &Client{BaseURL: ts.URL}
	want := localBytes(t, "simd_test_fast")

	res, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceSimulated {
		t.Errorf("first run source = %q, want %q", res.Source, SourceSimulated)
	}
	if !bytes.Equal(res.Metrics, want) {
		t.Fatalf("server metrics differ from local run:\nserver: %d bytes\nlocal:  %d bytes", len(res.Metrics), len(want))
	}

	// Same job again: served from the shared cache, still byte-identical,
	// no second simulation.
	res2, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != SourceCache {
		t.Errorf("second run source = %q, want %q", res2.Source, SourceCache)
	}
	if !bytes.Equal(res2.Metrics, want) {
		t.Fatal("cached metrics differ from local run")
	}
	if st := s.Stats(); st.Simulated != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 simulated and 1 cache hit", st)
	}

	// The golden scenario: the server's bytes for a pinned scenario are the
	// pinned bytes.
	golden, err := os.ReadFile(filepath.Join("..", "scenario", "testdata", "golden", "stream_triad_1t.json"))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := c.Run(context.Background(), Request{Scenario: "stream_triad_1t"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res3.Metrics, golden) {
		t.Fatal("server metrics for stream_triad_1t differ from the golden file")
	}
}

func TestCoalescingSimulatesOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, MaxQueued: 16})
	want := localBytes(t, "simd_test_slow")

	const clients = 8
	results := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{BaseURL: ts.URL}
			res, err := c.Run(context.Background(), Request{Scenario: "simd_test_slow"})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = res.Metrics
		}(i)
	}
	wg.Wait()

	for i, b := range results {
		if !bytes.Equal(b, want) {
			t.Errorf("client %d got divergent bytes (%d vs %d)", i, len(b), len(want))
		}
	}
	st := s.Stats()
	if st.Simulated != 1 {
		t.Errorf("stats.Simulated = %d, want exactly 1 (coalescing)", st.Simulated)
	}
	if st.Coalesced == 0 {
		t.Errorf("stats.Coalesced = 0, want > 0 for %d duplicate clients", clients)
	}
}

// submitRaw posts a job without the client's retry layer, returning the
// response for header-level assertions.
func submitRaw(t *testing.T, baseURL string, req Request, wait bool) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	url := baseURL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestAdmissionControlShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1})

	// Occupy the single worker, then the single queue slot, with distinct
	// keys (distinct seeds) so nothing coalesces.
	mkReq := func(v int64) Request {
		return Request{Scenario: "simd_test_slow", Sampling: samplingSeed(v)}
	}
	if resp := submitRaw(t, ts.URL, mkReq(1), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: %s", resp.Status)
	}
	waitFor(t, time.Second, func() bool { return s.Stats().Running == 1 })
	if resp := submitRaw(t, ts.URL, mkReq(2), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %s", resp.Status)
	}

	// The third distinct job is over capacity: shed with 429 + Retry-After,
	// immediately — never queued, never hung.
	resp := submitRaw(t, ts.URL, mkReq(3), false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity job: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("stats.Shed = %d, want 1", st.Shed)
	}

	// A duplicate of the running job still coalesces: duplicates are free
	// and must not be shed.
	if resp := submitRaw(t, ts.URL, mkReq(1), false); resp.StatusCode != http.StatusAccepted {
		t.Errorf("coalescing duplicate was shed: %s", resp.Status)
	}
}

// samplingSeed builds a sampling override whose only effect is to give the
// request a distinct cache key.
func samplingSeed(v int64) *machspec.Sampling {
	return &machspec.Sampling{Seed: &v}
}

func TestDeadlineReturnsMarkedPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_slow", TimeoutMs: 80}, true)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline job: %s, want 504", resp.Status)
	}
	if resp.Header.Get("X-Simd-Partial") != "1" {
		t.Error("504 without X-Simd-Partial")
	}
	var m struct {
		Partial bool   `json:"partial"`
		Fault   string `json:"fault"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Partial || m.Fault == "" {
		t.Errorf("partial body not marked: partial=%t fault=%q", m.Partial, m.Fault)
	}
}

func TestPanicPoisonsOnlyItsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c := &Client{BaseURL: ts.URL, Retries: -1}

	if _, err := c.Run(context.Background(), Request{Scenario: "simd_test_panic"}); err == nil {
		t.Fatal("panicking job reported success")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic not surfaced in the error: %v", err)
	}
	// The server survives and the next job runs normally.
	res, err := (&Client{BaseURL: ts.URL}).Run(context.Background(), Request{Scenario: "simd_test_fast"})
	if err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	if !bytes.Equal(res.Metrics, localBytes(t, "simd_test_fast")) {
		t.Error("job after panic produced divergent bytes")
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", st.Panics)
	}
}

func TestAdmissionRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobInstances: 100})
	cases := []struct {
		name string
		req  Request
		code int
	}{
		{"unknown scenario", Request{Scenario: "no_such_scenario"}, 400},
		{"unknown machine", Request{Scenario: "simd_test_fast", Machine: "no_such_machine"}, 400},
		{"machine and spec", Request{Scenario: "simd_test_fast", Machine: "haswell",
			Spec: json.RawMessage(`{"version":1}`)}, 400},
		{"over instance budget", Request{Scenario: "simd_test_slow"}, 413},
		{"placement without numa", Request{Scenario: "simd_test_fast", Placement: "interleave"}, 400},
	}
	for _, tc := range cases {
		resp := submitRaw(t, ts.URL, tc.req, true)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: got %s, want %d", tc.name, resp.Status, tc.code)
		}
	}
}

func TestDrainCheckpointsAndRestartResumesByteExact(t *testing.T) {
	state, cacheDir := t.TempDir(), t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: cacheDir, StateDir: state})
	want := localBytes(t, "simd_test_slow")
	key, err := sweep.Key(nil, "simd_test_slow", "", nil, false)
	if err != nil {
		t.Fatal(err)
	}

	// Async submit, then wait until the run is demonstrably in the middle
	// of its schedule (some instance boundaries crossed, many left).
	if resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_slow"}, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	waitFor(t, 5*time.Second, func() bool {
		f, ok := s.Lookup(key)
		return ok && f.status().Instances > 2
	})

	// Drain: the running job checkpoints at its next instance boundary;
	// new work is refused with 503.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_fast"}, false); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %s, want 503", resp.Status)
	}
	f, ok := s.Lookup(key)
	if !ok {
		t.Fatal("drained job forgotten")
	}
	if st := f.status(); st.State != StateCheckpointed {
		t.Fatalf("drained job state = %q, want %q", st.State, StateCheckpointed)
	}
	for _, p := range []string{key + ".job", key + ".ck"} {
		if _, err := os.Stat(filepath.Join(state, p)); err != nil {
			t.Fatalf("drain did not leave %s: %v", p, err)
		}
	}

	// A fresh server over the same directories resumes the parked job and
	// completes it byte-identically to an uninterrupted run.
	s2, err := New(Config{CacheDir: cacheDir, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	f2, ok := s2.Lookup(key)
	if !ok {
		t.Fatal("resumed job not found")
	}
	select {
	case <-f2.done:
	case <-time.After(30 * time.Second):
		t.Fatal("resumed job did not finish")
	}
	st, metrics, rerr := f2.result()
	if st != StateDone || rerr != nil {
		t.Fatalf("resumed job: state=%q err=%v", st, rerr)
	}
	if !bytes.Equal(metrics, want) {
		t.Fatal("resumed metrics differ from an uninterrupted run")
	}
	if !f2.status().Resumed {
		t.Error("resumed job not marked Resumed")
	}
	// The parked state is consumed, and the result landed in the shared
	// cache for the next requester.
	for _, p := range []string{key + ".job", key + ".ck"} {
		if _, err := os.Stat(filepath.Join(state, p)); !os.IsNotExist(err) {
			t.Errorf("%s not cleaned up after resume", p)
		}
	}
	if _, ok := cacheBytes(t, cacheDir, key, want); !ok {
		t.Error("resumed result not cached")
	}
	if s2.Stats().Resumed != 1 {
		t.Errorf("stats.Resumed = %d, want 1", s2.Stats().Resumed)
	}
}

// cacheBytes checks the on-disk cache entry for key equals want.
func cacheBytes(t *testing.T, dir, key string, want []byte) ([]byte, bool) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	return b, bytes.Equal(b, want)
}

func TestDrainParksQueuedJobs(t *testing.T) {
	state := t.TempDir()
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 4, StateDir: state})

	// One running, one queued (distinct keys).
	if resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_slow"}, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("running job: %s", resp.Status)
	}
	waitFor(t, time.Second, func() bool { return s.Stats().Running == 1 })
	qreq := Request{Scenario: "simd_test_slow", Sampling: samplingSeed(99)}
	if resp := submitRaw(t, ts.URL, qreq, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %s", resp.Status)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	// Both jobs are parked: the queued one as a bare request, the running
	// one with its checkpoint.
	jobs, _ := filepath.Glob(filepath.Join(state, "*.job"))
	if len(jobs) != 2 {
		t.Fatalf("drain parked %d jobs, want 2 (%v)", len(jobs), jobs)
	}
	if st := s.Stats(); st.Parked != 2 {
		t.Errorf("stats.Parked = %d, want 2", st.Parked)
	}

	// Restart resumes both to completion with a clean state directory.
	s2, err := New(Config{MaxConcurrent: 2, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Resume(); err != nil || n != 2 {
		t.Fatalf("resume: n=%d err=%v, want 2", n, err)
	}
	for _, j := range jobs {
		key := strings.TrimSuffix(filepath.Base(j), ".job")
		f, ok := s2.Lookup(key)
		if !ok {
			t.Fatalf("job %s not resumed", key)
		}
		select {
		case <-f.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s did not finish after restart", key)
		}
		if st, _, err := f.result(); st != StateDone {
			t.Errorf("job %s: state=%q err=%v", key, st, err)
		}
	}
	left, _ := filepath.Glob(filepath.Join(state, "*"))
	if len(left) != 0 {
		t.Errorf("state directory not cleaned after resume: %v", left)
	}
}

func TestHealthAndStatsEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %s, want 200", resp.Status)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %s, want 503", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("stats do not report draining")
	}
}

func TestEventsStreamReachesTerminal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_fast"}, false)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	events, err := http.Get(ts.URL + "/v1/jobs/" + st.Key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	body := make([]byte, 1<<16)
	var buf bytes.Buffer
	for {
		n, rerr := events.Body.Read(body)
		buf.Write(body[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(buf.String(), `"state":"done"`) {
		t.Errorf("event stream never reported the terminal state:\n%s", buf.String())
	}
}

func TestClientRetryHonorsRetryAfterAndBackoff(t *testing.T) {
	// A scripted server: two sheds, then success. The client must make
	// exactly three attempts and return the final body.
	var attempts int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shed"}`)
			return
		}
		w.Header().Set("X-Simd-Key", "k")
		w.Header().Set("X-Simd-Source", SourceSimulated)
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retries: 4, BaseDelay: time.Millisecond}
	start := time.Now()
	res, err := c.Run(context.Background(), Request{Scenario: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if string(res.Metrics) != `{"ok":true}` {
		t.Errorf("metrics = %q", res.Metrics)
	}
	// Two Retry-After: 1s hints must actually be honored.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("client ignored Retry-After: finished in %s", elapsed)
	}
}

func TestClientDoesNotRetryHardRejections(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad request"}`)
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, Retries: 4, BaseDelay: time.Millisecond}
	if _, err := c.Run(context.Background(), Request{}); err == nil {
		t.Fatal("client reported success on 400")
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (400 is not retryable)", attempts)
	}
}

func TestServerFaultPointsSurfaceCleanly(t *testing.T) {
	defer faultinject.Reset()
	cacheDir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: cacheDir})
	c := &Client{BaseURL: ts.URL, Retries: -1, BaseDelay: time.Millisecond}
	want := localBytes(t, "simd_test_fast")
	key, _ := sweep.Key(nil, "simd_test_fast", "", nil, false)

	// Admission and execution faults fail the request with a structured
	// error; a retry after the fault clears succeeds with exact bytes.
	for _, point := range []string{
		faultinject.PointServerAccept,
		faultinject.PointServerEnqueue,
		faultinject.PointServerRun,
	} {
		faultinject.Enable(point, 1, nil)
		if _, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"}); err == nil {
			t.Fatalf("point %s: request succeeded under injected fault", point)
		}
		faultinject.Reset()
		res, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"})
		if err != nil {
			t.Fatalf("point %s: retry after fault: %v", point, err)
		}
		if !bytes.Equal(res.Metrics, want) {
			t.Fatalf("point %s: retry produced divergent bytes", point)
		}
		// Leave a clean slate (the cached entry would mask the next
		// point's run path).
		os.Remove(filepath.Join(cacheDir, key+".json"))
	}

	// A cache-write fault must NOT fail the job: the result is correct,
	// only the next lookup loses its hit.
	faultinject.Enable(faultinject.PointServerCacheWrite, 1, nil)
	res, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"})
	faultinject.Reset()
	if err != nil {
		t.Fatalf("cache-write fault failed the job: %v", err)
	}
	if !bytes.Equal(res.Metrics, want) {
		t.Fatal("cache-write fault corrupted the response")
	}
	if _, err := os.Stat(filepath.Join(cacheDir, key+".json")); !os.IsNotExist(err) {
		t.Error("cache entry landed despite injected write fault")
	}
	_ = s
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}
