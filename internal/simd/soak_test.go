package simd

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// TestConcurrentSoak is the package's -race stress run: many clients, a
// small key space (so coalescing and cache hits actually happen), transient
// injected faults at the server's execution point, and a retrying client.
// The invariants it pins:
//
//   - no lost jobs: every request eventually succeeds;
//   - byte-identity: every response equals the local in-process run;
//   - exactly-once: each distinct key is simulated at most once per fault
//     window — duplicates coalesce or hit the cache, never re-simulate.
func TestConcurrentSoak(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 4,
		MaxQueued:     64,
		CacheDir:      t.TempDir(),
	})

	// Four distinct keys over the fast scenario (seed-only sampling
	// variations), with the local reference bytes computed up front.
	const distinctKeys = 4
	want := make(map[int][]byte, distinctKeys)
	for k := 0; k < distinctKeys; k++ {
		m, err := scenario.RunByName("simd_test_fast", scenario.Options{Sampling: samplingSeed(int64(k))})
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		want[k] = b
	}

	// A transient execution fault: the run point fails every job for a
	// short window, then clears. One non-retrying probe proves the fault
	// surfaces as a structured failure (and guarantees the window was
	// observed); the soak clients then retry straight through it.
	faultinject.Enable(faultinject.PointServerRun, 1, nil)
	probe := &Client{BaseURL: ts.URL, Retries: -1}
	if _, err := probe.Run(context.Background(), Request{Scenario: "simd_test_fast", Sampling: samplingSeed(0)}); err == nil {
		t.Fatal("probe succeeded under an armed run fault")
	}
	stopFault := time.AfterFunc(50*time.Millisecond, faultinject.Reset)
	defer stopFault.Stop()

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{BaseURL: ts.URL, Retries: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
			for r := 0; r < rounds; r++ {
				k := (w + r) % distinctKeys
				res, err := c.Run(context.Background(), Request{
					Scenario: "simd_test_fast",
					Sampling: samplingSeed(int64(k)),
				})
				if err != nil {
					t.Errorf("client %d round %d: lost job: %v", w, r, err)
					return
				}
				if !bytes.Equal(res.Metrics, want[k]) {
					t.Errorf("client %d round %d: divergent bytes for key %d", w, r, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Exactly-once per key per fault window: each of the 4 keys simulates
	// once after the fault clears, plus at most the runs the injected fault
	// killed before landing a result (those never produced bytes, so they
	// cannot double-count as results). Successful simulations are bounded
	// by the key count.
	st := s.Stats()
	if st.Simulated > distinctKeys {
		t.Errorf("stats.Simulated = %d, want <= %d (coalescing + cache must dedupe)", st.Simulated, distinctKeys)
	}
	if st.Simulated == 0 {
		t.Error("stats.Simulated = 0: nothing ran")
	}
	if st.Coalesced+st.CacheHits == 0 {
		t.Error("no coalescing or cache hits in a duplicate-heavy soak")
	}
	if st.Failed == 0 {
		t.Error("injected run fault never fired (fault window too short?)")
	}
}

// TestSoakDrainMidLoad drains the server while clients are mid-flight:
// in-flight checkpointable jobs park, late submissions are refused with a
// retryable 503, and a restarted server finishes every parked job to the
// exact bytes an uninterrupted run produces.
func TestSoakDrainMidLoad(t *testing.T) {
	state, cacheDir := t.TempDir(), t.TempDir()
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		MaxQueued:     16,
		CacheDir:      cacheDir,
		StateDir:      state,
	})
	want := localBytes(t, "simd_test_slow")

	// Two distinct slow jobs: one runs, one queues.
	keys := make([]string, 2)
	for i := range keys {
		req := Request{Scenario: "simd_test_slow"}
		var err error
		var sp = samplingSeed(int64(i))
		if i > 0 {
			req.Sampling = sp
		}
		if i == 0 {
			keys[i], err = sweep.Key(nil, "simd_test_slow", "", nil, false)
		} else {
			keys[i], err = sweep.Key(nil, "simd_test_slow", "", sp, false)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp := submitRaw(t, ts.URL, req, false); resp.StatusCode != 202 {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		f, ok := s.Lookup(keys[0])
		return ok && f.status().Instances > 2
	})

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	// Every admitted job reached a safe state: done or parked, never lost.
	for _, key := range keys {
		f, ok := s.Lookup(key)
		if !ok {
			t.Fatalf("job %s lost by drain", key[:12])
		}
		if st, _, _ := f.result(); st != StateDone && st != StateCheckpointed {
			t.Fatalf("job %s drained into %q", key[:12], st)
		}
	}

	// Restart and resume; both jobs complete byte-exactly. The second job
	// may have been parked without a checkpoint (it was still queued) — it
	// re-runs from scratch, which must yield the same bytes anyway.
	s2, err := New(Config{MaxConcurrent: 2, CacheDir: cacheDir, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Resume(); err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		f, ok := s2.Lookup(key)
		if !ok {
			t.Fatalf("job %s not found after restart", key[:12])
		}
		select {
		case <-f.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s did not finish after restart", key[:12])
		}
		st, metrics, rerr := f.result()
		if st != StateDone {
			t.Fatalf("job %s after restart: state=%q err=%v", key[:12], st, rerr)
		}
		if i == 0 && !bytes.Equal(metrics, want) {
			t.Error("resumed job bytes differ from an uninterrupted run")
		}
	}
}
