// Package stats provides the numerical machinery used by the Folding
// mechanism: kernel (Nadaraya–Watson) regression as a stand-in for the
// Kriging interpolation used by the original BSC Folding tool, isotonic
// regression to enforce monotonicity of folded cumulative counters, linear
// fits, histograms, and segmented-slope phase detection.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Kernel identifies a smoothing kernel shape.
type Kernel int

const (
	// Gaussian is the unbounded exp(-u²/2) kernel (default).
	Gaussian Kernel = iota
	// Epanechnikov is the compact parabolic kernel 3/4(1-u²) for |u|<1.
	Epanechnikov
	// Uniform is the boxcar kernel over |u|<1.
	Uniform
)

func (k Kernel) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Epanechnikov:
		return "epanechnikov"
	case Uniform:
		return "uniform"
	}
	return "unknown"
}

// weight evaluates the kernel at normalized distance u.
func (k Kernel) weight(u float64) float64 {
	switch k {
	case Gaussian:
		return math.Exp(-0.5 * u * u)
	case Epanechnikov:
		if u < -1 || u > 1 {
			return 0
		}
		return 0.75 * (1 - u*u)
	case Uniform:
		if u < -1 || u > 1 {
			return 0
		}
		return 0.5
	}
	return 0
}

// Errors returned by the regression helpers.
var (
	ErrNoSamples    = errors.New("stats: no samples")
	ErrBadBandwidth = errors.New("stats: bandwidth must be positive")
	ErrBadGrid      = errors.New("stats: grid must have at least 2 points")
	ErrLengths      = errors.New("stats: x and y length mismatch")
)

// Smoother performs Nadaraya–Watson kernel regression of scattered (x, y)
// samples, evaluated on an arbitrary grid. It is the replacement for the
// Kriging interpolation of the original Folding implementation: on the dense
// folded sample clouds produced by combining hundreds of region instances the
// two estimators produce equivalent smooth curves, and kernel regression
// needs no covariance-model fitting.
type Smoother struct {
	// Kernel selects the kernel shape; zero value is Gaussian.
	Kernel Kernel
	// Bandwidth is the kernel bandwidth in x units. If zero, a Silverman
	// rule-of-thumb bandwidth is derived from the sample spread.
	Bandwidth float64
	// Boundary reflects samples at the domain edges [Lo, Hi] to reduce edge
	// bias. Enabled when Hi > Lo.
	Lo, Hi float64
}

// silverman computes the rule-of-thumb bandwidth for the sample xs.
func silverman(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0.1
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	if sd == 0 {
		return 0.05
	}
	return 1.06 * sd * math.Pow(n, -0.2)
}

// support returns the kernel's effective half-width in normalized units:
// distances beyond it contribute nothing detectable. Compact kernels cut at
// their true support; the Gaussian is cut at 8 bandwidths, where the weight
// (exp(-32) ≈ 1.3e-14) is far below the noise floor of any folded curve.
func (k Kernel) support() float64 {
	if k == Gaussian {
		return 8
	}
	return 1
}

// Fit evaluates the regression of ys on xs at each grid point. xs need not
// be sorted. The returned slice is aligned with grid.
//
// The evaluation sorts the samples once (materializing the boundary
// reflections as explicit samples) and restricts every grid point to the
// samples within the kernel support, turning the naive
// O(len(grid)·len(xs)) kernel evaluation — the wall-clock bottleneck of
// folding large traces — into O(len(grid)·window).
func (s Smoother) Fit(xs, ys, grid []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrNoSamples
	}
	if len(xs) != len(ys) {
		return nil, ErrLengths
	}
	if len(grid) < 2 {
		return nil, ErrBadGrid
	}
	h := s.Bandwidth
	if h == 0 {
		h = silverman(xs)
	}
	if h <= 0 {
		return nil, ErrBadBandwidth
	}
	reflect := s.Hi > s.Lo
	n := len(xs)
	if reflect {
		n *= 3
	}
	// Sorted working copy, with reflected samples materialized so the
	// windowed pass treats them like any other sample.
	type pt struct{ x, y float64 }
	pts := make([]pt, 0, n)
	for j, x := range xs {
		pts = append(pts, pt{x, ys[j]})
		if reflect {
			// Reflect about both boundaries to correct edge bias.
			pts = append(pts, pt{2*s.Lo - x, ys[j]}, pt{2*s.Hi - x, ys[j]})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	cut := s.Kernel.support() * h

	out := make([]float64, len(grid))
	for i, g := range grid {
		lo := sort.Search(len(pts), func(j int) bool { return pts[j].x >= g-cut })
		hi := sort.Search(len(pts), func(j int) bool { return pts[j].x > g+cut })
		var num, den float64
		for j := lo; j < hi; j++ {
			w := s.Kernel.weight((g - pts[j].x) / h)
			num += w * pts[j].y
			den += w
		}
		if den == 0 {
			if s.Kernel == Gaussian {
				// The Gaussian is unbounded — the 8-bandwidth window only
				// drops terms below the noise floor. For a grid point beyond
				// it from every sample the regression limit is the nearest
				// sample's value (its weight dominates exponentially), so
				// return that rather than NaN, which downstream folding
				// (Isotonic, Derivative) cannot digest.
				j := lo
				if j >= len(pts) || (j > 0 && g-pts[j-1].x <= pts[j].x-g) {
					j--
				}
				out[i] = pts[j].y
				continue
			}
			out[i] = math.NaN()
			continue
		}
		out[i] = num / den
	}
	return out, nil
}

// UniformGrid returns n evenly spaced points covering [lo, hi] inclusive.
func UniformGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	g := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range g {
		g[i] = lo + float64(i)*step
	}
	g[n-1] = hi
	return g
}

// Derivative computes the centered finite-difference derivative of ys over
// the (uniform or non-uniform) grid xs. Endpoints use one-sided differences.
func Derivative(xs, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, ErrLengths
	}
	n := len(xs)
	if n < 2 {
		return nil, ErrBadGrid
	}
	d := make([]float64, n)
	d[0] = (ys[1] - ys[0]) / (xs[1] - xs[0])
	d[n-1] = (ys[n-1] - ys[n-2]) / (xs[n-1] - xs[n-2])
	for i := 1; i < n-1; i++ {
		d[i] = (ys[i+1] - ys[i-1]) / (xs[i+1] - xs[i-1])
	}
	return d, nil
}

// Isotonic performs in-place pool-adjacent-violators (PAVA) isotonic
// regression, returning the non-decreasing least-squares fit of ys. Folded
// cumulative-counter curves are physically non-decreasing; applying PAVA
// before differentiation prevents negative instantaneous rates caused by
// sampling noise.
func Isotonic(ys []float64) []float64 {
	n := len(ys)
	out := make([]float64, n)
	copy(out, ys)
	if n < 2 {
		return out
	}
	// Blocks represented by value and weight (count).
	vals := make([]float64, 0, n)
	wts := make([]float64, 0, n)
	for _, y := range out {
		vals = append(vals, y)
		wts = append(wts, 1)
		for len(vals) > 1 && vals[len(vals)-2] > vals[len(vals)-1] {
			v2, w2 := vals[len(vals)-1], wts[len(wts)-1]
			v1, w1 := vals[len(vals)-2], wts[len(wts)-2]
			vals = vals[:len(vals)-1]
			wts = wts[:len(wts)-1]
			vals[len(vals)-1] = (v1*w1 + v2*w2) / (w1 + w2)
			wts[len(wts)-1] = w1 + w2
		}
	}
	i := 0
	for b := range vals {
		for k := 0; k < int(wts[b]); k++ {
			out[i] = vals[b]
			i++
		}
	}
	return out
}

// Clamp limits every element of ys to [lo, hi] in place and returns ys.
func Clamp(ys []float64, lo, hi float64) []float64 {
	for i, y := range ys {
		if y < lo {
			ys[i] = lo
		} else if y > hi {
			ys[i] = hi
		}
	}
	return ys
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// LinearFit returns the least-squares slope and intercept of y = a*x + b.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, ErrLengths
	}
	if len(xs) < 2 {
		return 0, 0, ErrNoSamples
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, my, nil
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}
