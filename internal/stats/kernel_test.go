package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelWeights(t *testing.T) {
	if w := Gaussian.weight(0); math.Abs(w-1) > 1e-12 {
		t.Errorf("gaussian(0) = %g, want 1", w)
	}
	if w := Epanechnikov.weight(0); math.Abs(w-0.75) > 1e-12 {
		t.Errorf("epanechnikov(0) = %g, want 0.75", w)
	}
	if w := Epanechnikov.weight(1.5); w != 0 {
		t.Errorf("epanechnikov(1.5) = %g, want 0 (compact support)", w)
	}
	if w := Uniform.weight(0.5); w != 0.5 {
		t.Errorf("uniform(0.5) = %g, want 0.5", w)
	}
	if w := Uniform.weight(2); w != 0 {
		t.Errorf("uniform(2) = %g, want 0", w)
	}
	for _, k := range []Kernel{Gaussian, Epanechnikov, Uniform} {
		if k.String() == "unknown" {
			t.Errorf("kernel %d has no name", k)
		}
		// Symmetry.
		if k.weight(0.3) != k.weight(-0.3) {
			t.Errorf("%v kernel not symmetric", k)
		}
	}
}

func TestSmootherRecoversLinear(t *testing.T) {
	// Kernel regression of a noiseless linear function should reproduce it
	// away from the edges; with boundary reflection it is good everywhere.
	n := 400
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1)
		ys[i] = 2*xs[i] + 1
	}
	grid := UniformGrid(0, 1, 51)
	sm := Smoother{Bandwidth: 0.03, Lo: 0, Hi: 1}
	fit, err := sm.Fit(xs, ys, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grid {
		want := 2*g + 1
		if math.Abs(fit[i]-want) > 0.05 {
			t.Errorf("fit(%.2f) = %g, want %g", g, fit[i], want)
		}
	}
}

// TestSmootherGaussianFarGrid pins the windowed Fit's behaviour for grid
// points farther than the 8-bandwidth support from every sample: the
// Gaussian (unbounded) must still return a finite value — the nearest
// sample's — never NaN, because folding feeds the result into Isotonic
// and Derivative unfiltered.
func TestSmootherGaussianFarGrid(t *testing.T) {
	xs := []float64{0.49, 0.50, 0.51}
	ys := []float64{3, 3, 3}
	grid := UniformGrid(0, 1, 11) // points up to ~25 bandwidths away
	fit, err := Smoother{Bandwidth: 0.02}.Fit(xs, ys, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grid {
		if math.IsNaN(fit[i]) {
			t.Fatalf("fit(%.2f) is NaN", g)
		}
		if math.Abs(fit[i]-3) > 1e-9 {
			t.Errorf("fit(%.2f) = %g, want 3 (nearest-sample limit)", g, fit[i])
		}
	}
}

func TestSmootherErrors(t *testing.T) {
	var sm Smoother
	if _, err := sm.Fit(nil, nil, UniformGrid(0, 1, 3)); err != ErrNoSamples {
		t.Errorf("no samples: err = %v", err)
	}
	if _, err := sm.Fit([]float64{1}, []float64{1, 2}, UniformGrid(0, 1, 3)); err != ErrLengths {
		t.Errorf("length mismatch: err = %v", err)
	}
	if _, err := sm.Fit([]float64{1}, []float64{1}, []float64{0}); err != ErrBadGrid {
		t.Errorf("bad grid: err = %v", err)
	}
	sm.Bandwidth = -1
	if _, err := sm.Fit([]float64{1, 2}, []float64{1, 2}, UniformGrid(0, 1, 3)); err != ErrBadBandwidth {
		t.Errorf("negative bandwidth: err = %v", err)
	}
}

func TestSmootherDefaultBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = 5.0
	}
	sm := Smoother{} // bandwidth derived via Silverman
	fit, err := sm.Fit(xs, ys, UniformGrid(0, 1, 11))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fit {
		if math.Abs(v-5) > 1e-9 {
			t.Errorf("constant signal fit = %g, want 5", v)
		}
	}
}

func TestUniformGrid(t *testing.T) {
	g := UniformGrid(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("grid[%d] = %g, want %g", i, g[i], want[i])
		}
	}
	if g2 := UniformGrid(0, 1, 1); len(g2) != 2 {
		t.Errorf("n<2 clamps to 2, got len %d", len(g2))
	}
}

func TestDerivative(t *testing.T) {
	xs := UniformGrid(0, 1, 101)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	d, err := Derivative(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(xs)-1; i++ {
		want := 2 * xs[i]
		if math.Abs(d[i]-want) > 1e-6 {
			t.Errorf("d(%.2f) = %g, want %g", xs[i], d[i], want)
		}
	}
	if _, err := Derivative(xs[:1], ys[:1]); err != ErrBadGrid {
		t.Errorf("short input err = %v", err)
	}
	if _, err := Derivative(xs, ys[:2]); err != ErrLengths {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestIsotonic(t *testing.T) {
	in := []float64{1, 3, 2, 4, 0, 6}
	out := Isotonic(in)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("not monotone: %v", out)
		}
	}
	// Already monotone input passes through unchanged.
	mono := []float64{0, 1, 2, 3}
	got := Isotonic(mono)
	for i := range mono {
		if got[i] != mono[i] {
			t.Fatalf("monotone input changed: %v", got)
		}
	}
	// PAVA preserves the mean.
	if math.Abs(Mean(out)-Mean(in)) > 1e-12 {
		t.Errorf("mean changed: %g vs %g", Mean(out), Mean(in))
	}
}

func TestPropertyIsotonicMonotone(t *testing.T) {
	f := func(ys []float64) bool {
		for i, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				ys[i] = 0
			}
		}
		out := Isotonic(ys)
		if len(out) != len(ys) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	ys := []float64{-1, 0.5, 2}
	Clamp(ys, 0, 1)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if ys[i] != want[i] {
			t.Errorf("Clamp[%d] = %g, want %g", i, ys[i], want[i])
		}
	}
}

func TestMeanVarianceQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("Variance = %g, want 2.5", v)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %g, want 2", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate Mean/Variance")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("fit = %g x + %g, want 2x+1", a, b)
	}
	if _, _, err := LinearFit(xs[:1], ys[:1]); err != ErrNoSamples {
		t.Errorf("short input err = %v", err)
	}
	if _, _, err := LinearFit(xs, ys[:2]); err != ErrLengths {
		t.Errorf("mismatch err = %v", err)
	}
	// Vertical degenerate case: all x equal.
	a, b, err = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil || a != 0 || b != 2 {
		t.Errorf("degenerate fit = %g, %g, %v", a, b, err)
	}
}
