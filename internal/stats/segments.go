package stats

import (
	"math"
	"sort"
)

// Segment is a maximal run of the folded time axis over which a signal is
// approximately constant. The Folding report uses segments of the
// instantaneous-rate curves (and of the dominant source line) to delimit the
// computation phases the paper labels A(a1, a2), B, C, D(d1, d2), E.
type Segment struct {
	// Lo and Hi delimit the segment on the x axis (half-open [Lo, Hi)).
	Lo, Hi float64
	// Value is the mean signal value over the segment.
	Value float64
}

// SegmentByThreshold splits the signal ys over grid xs into maximal segments
// whose values stay within relTol (relative to the overall signal range) of
// the running segment mean. It is a simple, deterministic change-point
// detector adequate for the piecewise-flat rate curves folding produces.
func SegmentByThreshold(xs, ys []float64, relTol float64) []Segment {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	span := hi - lo
	if span == 0 {
		return []Segment{{Lo: xs[0], Hi: xs[len(xs)-1], Value: ys[0]}}
	}
	tol := relTol * span
	var segs []Segment
	start := 0
	sum := ys[0]
	for i := 1; i < len(ys); i++ {
		mean := sum / float64(i-start)
		if math.Abs(ys[i]-mean) > tol {
			segs = append(segs, Segment{Lo: xs[start], Hi: xs[i], Value: mean})
			start = i
			sum = ys[i]
			continue
		}
		sum += ys[i]
	}
	segs = append(segs, Segment{
		Lo:    xs[start],
		Hi:    xs[len(xs)-1],
		Value: sum / float64(len(ys)-start),
	})
	return segs
}

// MergeShortSegments merges segments narrower than minWidth into their wider
// neighbour (preferring the neighbour with the closer value), returning a new
// slice. Used to suppress spurious single-point phases at transitions.
func MergeShortSegments(segs []Segment, minWidth float64) []Segment {
	if len(segs) <= 1 {
		return segs
	}
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if len(out) > 0 && s.Hi-s.Lo < minWidth {
			prev := &out[len(out)-1]
			w1 := prev.Hi - prev.Lo
			w2 := s.Hi - s.Lo
			prev.Value = (prev.Value*w1 + s.Value*w2) / (w1 + w2)
			prev.Hi = s.Hi
			continue
		}
		out = append(out, s)
	}
	// A leading short segment may remain; merge forward.
	if len(out) > 1 && out[0].Hi-out[0].Lo < minWidth {
		w1 := out[0].Hi - out[0].Lo
		w2 := out[1].Hi - out[1].Lo
		out[1].Value = (out[0].Value*w1 + out[1].Value*w2) / (w1 + w2)
		out[1].Lo = out[0].Lo
		out = out[1:]
	}
	return out
}

// Histogram is a fixed-width bucketed histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []uint64
	Under   uint64 // samples below Lo
	Over    uint64 // samples at or above Hi
	Samples uint64
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Bucket returns the [lo, hi) bounds of bucket i.
func (h *Histogram) Bucket(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Mode returns the index of the most populated bucket (-1 when empty).
func (h *Histogram) Mode() int {
	best, idx := uint64(0), -1
	for i, c := range h.Counts {
		if c > best {
			best, idx = c, i
		}
	}
	return idx
}

// CDFQuantile returns the approximate q-quantile from bucket midpoints.
func (h *Histogram) CDFQuantile(q float64) float64 {
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			lo, hi := h.Bucket(i)
			return (lo + hi) / 2
		}
	}
	lo, hi := h.Bucket(len(h.Counts) - 1)
	return (lo + hi) / 2
}

// WeightedMedian returns the value m minimizing sum(w_i * |x_i - m|): the
// weighted median of the (value, weight) pairs. Pairs need not be sorted.
func WeightedMedian(xs, ws []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ws) {
		return math.NaN()
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(xs))
	var tot float64
	for i := range xs {
		ps[i] = pair{xs[i], ws[i]}
		tot += ws[i]
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	var cum float64
	for _, p := range ps {
		cum += p.w
		if cum >= tot/2 {
			return p.x
		}
	}
	return ps[len(ps)-1].x
}
