package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func stepSignal(n int, levels []float64) ([]float64, []float64) {
	xs := UniformGrid(0, 1, n)
	ys := make([]float64, n)
	per := n / len(levels)
	for i := range ys {
		li := i / per
		if li >= len(levels) {
			li = len(levels) - 1
		}
		ys[i] = levels[li]
	}
	return xs, ys
}

func TestSegmentByThresholdSteps(t *testing.T) {
	xs, ys := stepSignal(300, []float64{1, 5, 2})
	segs := SegmentByThreshold(xs, ys, 0.1)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3: %+v", len(segs), segs)
	}
	wantVals := []float64{1, 5, 2}
	for i, s := range segs {
		if math.Abs(s.Value-wantVals[i]) > 0.01 {
			t.Errorf("segment %d value = %g, want %g", i, s.Value, wantVals[i])
		}
	}
	// Segments must tile [0, 1] without gaps.
	if segs[0].Lo != 0 || segs[len(segs)-1].Hi != 1 {
		t.Errorf("segments do not span domain: %+v", segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Lo != segs[i-1].Hi {
			t.Errorf("gap between segment %d and %d", i-1, i)
		}
	}
}

func TestSegmentByThresholdFlat(t *testing.T) {
	xs, ys := stepSignal(50, []float64{3})
	segs := SegmentByThreshold(xs, ys, 0.05)
	if len(segs) != 1 {
		t.Fatalf("flat signal produced %d segments", len(segs))
	}
	if segs[0].Value != 3 {
		t.Errorf("value = %g", segs[0].Value)
	}
}

func TestSegmentByThresholdDegenerate(t *testing.T) {
	if segs := SegmentByThreshold(nil, nil, 0.1); segs != nil {
		t.Error("nil input should give nil")
	}
	if segs := SegmentByThreshold([]float64{1}, []float64{1, 2}, 0.1); segs != nil {
		t.Error("mismatched input should give nil")
	}
}

func TestMergeShortSegments(t *testing.T) {
	segs := []Segment{
		{Lo: 0, Hi: 0.4, Value: 1},
		{Lo: 0.4, Hi: 0.42, Value: 9}, // spurious
		{Lo: 0.42, Hi: 1, Value: 2},
	}
	out := MergeShortSegments(segs, 0.05)
	if len(out) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(out), out)
	}
	if out[0].Hi != 0.42 {
		t.Errorf("short segment merged wrong: %+v", out)
	}
	// Leading short segment merges forward.
	segs2 := []Segment{
		{Lo: 0, Hi: 0.01, Value: 9},
		{Lo: 0.01, Hi: 1, Value: 2},
	}
	out2 := MergeShortSegments(segs2, 0.05)
	if len(out2) != 1 || out2[0].Lo != 0 {
		t.Errorf("leading merge: %+v", out2)
	}
	// Single segment untouched.
	if got := MergeShortSegments(segs2[:1], 0.05); len(got) != 1 {
		t.Error("single segment modified")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bucket %d = %d, want 10", i, c)
		}
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Samples != 103 {
		t.Errorf("samples = %d", h.Samples)
	}
	lo, hi := h.Bucket(3)
	if lo != 3 || hi != 4 {
		t.Errorf("Bucket(3) = [%g,%g)", lo, hi)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.Mode() != -1 {
		t.Error("empty histogram mode should be -1")
	}
	h.Add(1)
	h.Add(5)
	h.Add(5.5)
	if h.Mode() != 2 {
		t.Errorf("Mode = %d, want 2", h.Mode())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.CDFQuantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median = %g, want ~50", med)
	}
	empty := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.CDFQuantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestWeightedMedian(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 1, 10}
	if m := WeightedMedian(xs, ws); m != 3 {
		t.Errorf("weighted median = %g, want 3", m)
	}
	if !math.IsNaN(WeightedMedian(nil, nil)) {
		t.Error("empty should be NaN")
	}
}

func TestPropertySegmentsTile(t *testing.T) {
	// Segments always tile [xs[0], xs[n-1]] contiguously.
	f := func(seed int64) bool {
		n := 100
		xs := UniformGrid(0, 1, n)
		ys := make([]float64, n)
		v := float64(seed % 7)
		for i := range ys {
			if i%17 == 0 {
				v = float64((int64(i) + seed) % 13)
			}
			ys[i] = v
		}
		segs := SegmentByThreshold(xs, ys, 0.05)
		if len(segs) == 0 {
			return false
		}
		if segs[0].Lo != xs[0] || segs[len(segs)-1].Hi != xs[n-1] {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Lo != segs[i-1].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
