package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync/atomic"

	"repro/internal/atomicio"
)

// Cache is a directory-backed store of canonical Metrics JSON keyed by the
// point content hash: one <key>.json file per entry, written atomically
// (temp + rename through atomicio) so a crashed writer never leaves a
// truncated entry that would later be served as a result. Reads are
// defensive anyway: an entry that is not complete, valid JSON — a torn
// write by a non-atomic producer, a truncating filesystem crash, manual
// tampering — is evicted with a notice and reported as a miss, so one
// corrupt file costs a re-simulation, never the point. Multiple processes
// may share one cache directory: rename is atomic, so readers observe
// either the old complete entry or the new complete entry, never a tear.
// The zero-value counters make hit and eviction accounting testable.
type Cache struct {
	dir     string
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
	// Notice, when non-nil, receives one call per evicted corrupt entry.
	// Set it before the cache is shared between goroutines.
	Notice func(key string, err error)
}

var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// OpenCache creates dir if needed and returns the cache over it.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) (string, error) {
	// The key is interpolated into a filesystem path; only the hex digest
	// shape Key produces is accepted.
	if !keyPattern.MatchString(key) {
		return "", fmt.Errorf("sweep: cache: malformed key %q", key)
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Get returns the cached metrics bytes for key, or ok=false on a miss. A
// corrupt or truncated entry is evicted and counted as a miss: serving torn
// bytes as a simulation result would be worse than re-simulating the point.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		c.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweep: cache: %w", err)
	}
	if verr := validEntry(b); verr != nil {
		// Remove may fail if a concurrent writer just replaced the entry
		// with a good one — the next Get will read that one; either way the
		// corrupt bytes are never returned.
		os.Remove(p)
		c.evicted.Add(1)
		c.misses.Add(1)
		if c.Notice != nil {
			c.Notice(key, verr)
		}
		return nil, false, nil
	}
	c.hits.Add(1)
	return b, true, nil
}

// validEntry checks that cached bytes form a complete metrics document. A
// torn write truncates the JSON mid-token, which json.Valid rejects.
func validEntry(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("sweep: cache: empty entry")
	}
	if !json.Valid(b) {
		return fmt.Errorf("sweep: cache: corrupt or truncated entry (%d bytes)", len(b))
	}
	return nil
}

// Put stores the metrics bytes for key, replacing any existing entry
// atomically.
func (c *Cache) Put(key string, b []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(p, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
}

// Hits, Misses and Evictions report the Get outcomes since the cache was
// opened (an eviction also counts as a miss).
func (c *Cache) Hits() uint64      { return c.hits.Load() }
func (c *Cache) Misses() uint64    { return c.misses.Load() }
func (c *Cache) Evictions() uint64 { return c.evicted.Load() }
