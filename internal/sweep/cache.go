package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync/atomic"

	"repro/internal/atomicio"
)

// Cache is a directory-backed store of canonical Metrics JSON keyed by the
// point content hash: one <key>.json file per entry, written atomically so
// a crashed sweep never leaves a truncated entry that would later be served
// as a result. The zero-value counters make hit accounting testable.
type Cache struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
}

var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// OpenCache creates dir if needed and returns the cache over it.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) (string, error) {
	// The key is interpolated into a filesystem path; only the hex digest
	// shape Key produces is accepted.
	if !keyPattern.MatchString(key) {
		return "", fmt.Errorf("sweep: cache: malformed key %q", key)
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Get returns the cached metrics bytes for key, or ok=false on a miss.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		c.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweep: cache: %w", err)
	}
	c.hits.Add(1)
	return b, true, nil
}

// Put stores the metrics bytes for key, replacing any existing entry
// atomically.
func (c *Cache) Put(key string, b []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(p, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
}

// Hits and Misses report the Get outcomes since the cache was opened.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }
