package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// tornEntry plants a cache entry through a torn-write faultinject.Writer —
// the half-written file a non-atomic producer (or a truncating crash)
// leaves behind. It bypasses atomicio on purpose: the point of the test is
// that the *reader* survives a tear the writer discipline did not prevent.
func tornEntry(t *testing.T, c *Cache, key string, full []byte) string {
	t.Helper()
	defer faultinject.Reset()
	path := filepath.Join(c.dir, key+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const point = "test.cache.torn"
	faultinject.Enable(point, 1, nil)
	if _, err := faultinject.Writer(f, point).Write(full); err == nil {
		t.Fatal("torn writer did not fail")
	}
	return path
}

func TestCacheEvictsTornEntry(t *testing.T) {
	// A full valid entry for one key, a torn copy of the same bytes for
	// another: the valid one is served, the torn one is evicted with a
	// notice and reported as a miss.
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var notices []string
	c.Notice = func(key string, err error) {
		notices = append(notices, fmt.Sprintf("%s: %v", key[:8], err))
	}
	full := []byte(`{"scenario": "stream_triad_1t", "per_thread": [{"cycles": 12345}]}` + "\n")
	goodKey := strings.Repeat("a", 64)
	tornKey := strings.Repeat("b", 64)
	if err := c.Put(goodKey, full); err != nil {
		t.Fatal(err)
	}
	path := tornEntry(t, c, tornKey, full)

	if b, ok, err := c.Get(goodKey); err != nil || !ok || !bytes.Equal(b, full) {
		t.Fatalf("good entry: ok=%t err=%v", ok, err)
	}
	b, ok, err := c.Get(tornKey)
	if err != nil {
		t.Fatalf("torn entry must be a miss, not an error: %v", err)
	}
	if ok || b != nil {
		t.Fatalf("torn entry served as a hit (%d bytes)", len(b))
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("torn entry not evicted from disk: %v", err)
	}
	if c.Evictions() != 1 || len(notices) != 1 {
		t.Errorf("evictions=%d notices=%v, want exactly one of each", c.Evictions(), notices)
	}
	if !strings.Contains(notices[0], "truncated") && !strings.Contains(notices[0], "corrupt") {
		t.Errorf("notice does not name the corruption: %q", notices[0])
	}

	// An empty entry (open() succeeded, write never happened) is evicted
	// the same way.
	emptyKey := strings.Repeat("c", 64)
	if err := os.WriteFile(filepath.Join(c.dir, emptyKey+".json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(emptyKey); err != nil || ok {
		t.Fatalf("empty entry: ok=%t err=%v, want miss", ok, err)
	}

	// After eviction the slot is writable again and serves the new bytes.
	if err := c.Put(tornKey, full); err != nil {
		t.Fatal(err)
	}
	if b, ok, _ := c.Get(tornKey); !ok || !bytes.Equal(b, full) {
		t.Fatal("re-written entry not served after eviction")
	}
}

// TestCacheTornWriteNeverLands pins the atomicio route on the write side: a
// torn write through Cache.Put leaves no entry at all (the temp file is
// discarded), so the next reader re-simulates instead of reading garbage.
func TestCacheTornWriteNeverLands(t *testing.T) {
	defer faultinject.Reset()
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("d", 64)
	faultinject.Enable(faultinject.PointWrite, 1, nil)
	if err := c.Put(key, []byte(`{"scenario":"x"}`)); err == nil {
		t.Fatal("torn Put reported success")
	}
	faultinject.Reset()
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("torn Put left an entry: ok=%t err=%v", ok, err)
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("torn Put left %d files (temp litter?)", len(entries))
	}
}

// TestCacheConcurrentSharedDir drives two Cache handles (standing in for
// two sweep/server processes) over one directory from many goroutines:
// concurrent Puts of the same keys and interleaved Gets must only ever
// observe complete entries — rename is atomic, so a reader sees the old
// bytes or the new bytes, never a tear — and must never error. Run under
// -race this also pins the handle itself as goroutine-safe.
func TestCacheConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Notice = func(key string, err error) { t.Errorf("cache a evicted %s: %v", key[:8], err) }
	b.Notice = func(key string, err error) { t.Errorf("cache b evicted %s: %v", key[:8], err) }

	const keys = 4
	const rounds = 50
	payload := func(k int) []byte {
		// Large enough that a torn write would be observable mid-document.
		return []byte(fmt.Sprintf(`{"scenario": "k%d", "filler": %q}`+"\n", k, strings.Repeat("x", 4096)))
	}
	keyOf := func(k int) string { return strings.Repeat(fmt.Sprintf("%x", k&0xf), 64) }

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		c := a
		if w%2 == 1 {
			c = b
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				if w%2 == 0 {
					if err := c.Put(keyOf(k), payload(k)); err != nil {
						errs <- fmt.Errorf("put: %w", err)
						return
					}
				}
				got, ok, err := c.Get(keyOf(k))
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if ok && !bytes.Equal(got, payload(k)) {
					errs <- fmt.Errorf("key %d: read %d bytes that are not the full entry", k, len(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if a.Evictions() != 0 || b.Evictions() != 0 {
		t.Errorf("concurrent atomic writes caused evictions: a=%d b=%d", a.Evictions(), b.Evictions())
	}
}

// TestRunnerCancellation pins the signal discipline of the sweep engine:
// cancelling the context mid-matrix stops the pool cleanly, the completed
// points keep their results and cache entries, and the interrupted points
// are reported as cancelled — not as errors.
func TestRunnerCancellation(t *testing.T) {
	f := &File{
		Version:   1,
		Machines:  []string{"haswell", "small"},
		Scenarios: []string{"stream_triad_1t", "random_access_1t"},
	}
	points, err := f.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	completed := 0
	r := &Runner{
		Jobs:    1,
		Cache:   cache,
		Context: ctx,
		Log: func(format string, args ...any) {
			// One log line per finished point; cancel after the first so
			// the remaining points observe a dead context.
			completed++
			if completed == 1 {
				cancel()
			}
		},
	}
	results, sum, err := r.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cancelled == 0 {
		t.Fatalf("summary = %s, want cancelled points", sum)
	}
	if sum.Errors != 0 {
		t.Fatalf("summary = %s: cancellation must not count as errors", sum)
	}
	if sum.Finished() == 0 {
		t.Fatalf("summary = %s, want at least the first point finished", sum)
	}
	kept := 0
	for _, res := range results {
		switch res.Source {
		case SourceSimulated:
			// Completed points keep their cache entries.
			if b, ok, err := cache.Get(res.Point.Key); err != nil || !ok || !bytes.Equal(b, res.Metrics) {
				t.Errorf("completed point %s lost its cache entry (ok=%t err=%v)", res.Point.Label(), ok, err)
			}
			kept++
		case SourceCancelled:
			if res.Metrics != nil {
				t.Errorf("cancelled point %s carries metrics bytes", res.Point.Label())
			}
			if _, ok, _ := cache.Get(res.Point.Key); ok {
				t.Errorf("cancelled point %s was cached", res.Point.Label())
			}
		}
	}
	if kept == 0 {
		t.Error("no completed point retained a cache entry")
	}
}
