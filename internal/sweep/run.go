package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Source records how a point's result was obtained.
type Source string

const (
	SourceSimulated Source = "simulated"
	SourceRemote    Source = "remote" // executed by a simd server (Execute hook)
	SourceCache     Source = "cached"
	SourceDeduped   Source = "deduped" // identical point earlier in this run
	SourceSkipped   Source = "skipped"
	SourceCancelled Source = "cancelled" // stopped by the run context (SIGINT/SIGTERM, timeout)
	SourceError     Source = "error"
)

// Result is one point's outcome. Metrics holds the canonical Metrics JSON
// (nil for skipped and errored points); Parsed is its decoded form for
// summary tables.
type Result struct {
	Point   Point
	Source  Source
	Metrics []byte
	Parsed  *scenario.Metrics
	Err     error
	// Elapsed is the wall time spent producing this point's bytes — the
	// simulation or the remote round trip. Cache hits, dedups and skips
	// cost nothing and report zero.
	Elapsed time.Duration
}

// Summary aggregates a run for the one-line report and the CI smoke checks.
type Summary struct {
	Points    int
	Simulated int
	Remote    int
	CacheHits int
	Deduped   int
	Skipped   int
	Cancelled int
	Errors    int
}

func (s Summary) String() string {
	line := fmt.Sprintf("%d points, %d simulated, %d cached, %d deduped, %d skipped, %d errors",
		s.Points, s.Simulated, s.CacheHits, s.Deduped, s.Skipped, s.Errors)
	if s.Remote > 0 {
		line += fmt.Sprintf(", %d remote", s.Remote)
	}
	if s.Cancelled > 0 {
		line += fmt.Sprintf(", %d cancelled", s.Cancelled)
	}
	return line
}

// Finished counts the points that produced a usable result.
func (s Summary) Finished() int {
	return s.Simulated + s.Remote + s.CacheHits + s.Deduped
}

// Runner executes expanded sweep points.
type Runner struct {
	// Jobs bounds concurrent simulations (<=0: 1). Each job is itself a
	// deterministic sequential run, so host-level parallelism never changes
	// any point's bytes.
	Jobs int
	// Cache, when non-nil, is consulted before simulating and filled after.
	Cache *Cache
	// Context cancels in-flight simulations at instance boundaries (nil:
	// run to completion). A cancelled point is reported as SourceCancelled,
	// not SourceError; points completed before the cancellation keep their
	// results and cache entries.
	Context context.Context
	// Execute, when non-nil, replaces local simulation for cache-miss
	// points — the remote-execution hook (cmd/sweep -server hands points to
	// a simd server). It returns the canonical metrics bytes and whether
	// the server served them from its own cache.
	Execute func(ctx context.Context, p Point) (metrics []byte, cached bool, err error)
	// Log, when non-nil, receives one progress line per completed point.
	Log func(format string, args ...any)
	// Progress, when non-nil, is called after each point settles with the
	// running done count and the total (duplicates settle with their key's
	// first occurrence). Calls are serialized; the final call is always
	// (total, total) unless the run errored.
	Progress func(done, total int)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// Run executes the points and returns results in point order plus the
// summary. Within one invocation, points with equal keys are deduplicated:
// the first occurrence runs (or hits the cache) and the rest reuse its
// bytes. Individual point failures are recorded, not fatal — a sweep is a
// matrix, and one broken cell must not discard the rest.
func (r *Runner) Run(points []Point) ([]Result, Summary, error) {
	results := make([]Result, len(points))
	summary := Summary{Points: len(points)}

	// Partition: skipped points resolve immediately; the first point of
	// each key becomes a job; later ones wait for it.
	firstByKey := make(map[string]int, len(points))
	countByKey := make(map[string]int, len(points))
	var jobs []int
	for i, p := range points {
		results[i].Point = p
		if p.Skip != "" {
			results[i].Source = SourceSkipped
			summary.Skipped++
			continue
		}
		countByKey[p.Key]++
		if _, dup := firstByKey[p.Key]; dup {
			continue
		}
		firstByKey[p.Key] = i
		jobs = append(jobs, i)
	}
	progressDone := summary.Skipped
	if r.Progress != nil && len(points) > 0 {
		r.Progress(progressDone, len(points))
	}

	workers := r.Jobs
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	jobCh := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards summary counters and r.logf ordering
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// A panicking simulation must not deadlock the pool; drain
				// our share and surface the panic as a counted error.
				if rec := recover(); rec != nil {
					mu.Lock()
					summary.Errors++
					mu.Unlock()
					for range jobCh {
					}
				}
			}()
			for i := range jobCh {
				res := r.runPoint(points[i])
				mu.Lock()
				results[i] = res
				switch res.Source {
				case SourceSimulated:
					summary.Simulated++
				case SourceRemote:
					summary.Remote++
				case SourceCache:
					summary.CacheHits++
				case SourceCancelled:
					summary.Cancelled++
				case SourceError:
					summary.Errors++
				}
				r.logf("sweep: %-9s %s", res.Source, points[i].Label())
				if r.Progress != nil {
					// A settled key settles all its duplicates too.
					progressDone += countByKey[points[i].Key]
					r.Progress(progressDone, len(points))
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range jobs {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()

	// Resolve duplicates from their key's first occurrence.
	for i, p := range points {
		if p.Skip != "" || firstByKey[p.Key] == i {
			continue
		}
		src := results[firstByKey[p.Key]]
		results[i] = Result{Point: p, Metrics: src.Metrics, Parsed: src.Parsed, Err: src.Err, Source: SourceDeduped}
		switch src.Source {
		case SourceError:
			results[i].Source = SourceError
			summary.Errors++
		case SourceCancelled:
			results[i].Source = SourceCancelled
			summary.Cancelled++
		default:
			summary.Deduped++
		}
	}
	return results, summary, nil
}

func (r *Runner) runPoint(p Point) Result {
	res := Result{Point: p}
	if r.Cache != nil {
		b, ok, err := r.Cache.Get(p.Key)
		if err != nil {
			res.Source, res.Err = SourceError, err
			return res
		}
		if ok {
			res.Source, res.Metrics = SourceCache, b
			res.Parsed = parseMetrics(b)
			return res
		}
	}
	ctx := r.Context
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if r.Execute != nil {
		b, cached, err := r.Execute(ctx, p)
		res.Elapsed = time.Since(start)
		if err != nil {
			if ctx.Err() != nil {
				res.Source = SourceCancelled
			} else {
				res.Source = SourceError
			}
			res.Err = fmt.Errorf("%s: %w", p.Label(), err)
			return res
		}
		res.Source, res.Metrics, res.Parsed = SourceRemote, b, parseMetrics(b)
		if cached {
			res.Source = SourceCache
		}
		r.putCache(p, b)
		return res
	}
	opts := p.Options()
	opts.Context = ctx
	m, err := scenario.Run(p.Scenario, opts)
	res.Elapsed = time.Since(start)
	if err != nil {
		// A clean context stop (SIGINT/SIGTERM, timeout) is a cancelled
		// point, not a failed one: the rest of the matrix was interrupted,
		// not broken. Partial metrics are never cached.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			res.Source = SourceCancelled
		} else {
			res.Source = SourceError
		}
		res.Err = fmt.Errorf("%s: %w", p.Label(), err)
		return res
	}
	b, err := m.JSON()
	if err != nil {
		res.Source = SourceError
		res.Err = fmt.Errorf("%s: %w", p.Label(), err)
		return res
	}
	res.Source, res.Metrics, res.Parsed = SourceSimulated, b, m
	r.putCache(p, b)
	return res
}

// putCache stores a completed point's bytes; a cache-write failure only
// costs the next run its hit, so it is logged, not fatal.
func (r *Runner) putCache(p Point, b []byte) {
	if r.Cache == nil {
		return
	}
	if err := r.Cache.Put(p.Key, b); err != nil {
		r.logf("sweep: cache write failed for %s: %v", p.Label(), err)
	}
}

func parseMetrics(b []byte) *scenario.Metrics {
	var m scenario.Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		return nil
	}
	return &m
}
