// Package sweep expands a declarative parameter-sweep file — a machine ×
// scenario × placement × sampling cross-product — into concrete simulation
// jobs, runs them on a bounded worker pool, and caches each job's canonical
// Metrics JSON keyed by a content hash of everything that determines the
// result. Because every job reuses the deterministic sequential schedule
// (scenario.Run), two runs of the same point produce byte-identical metrics,
// so a cache hit is exact: a re-run of an unchanged sweep performs zero
// simulation.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/machspec"
	"repro/internal/scenario"
)

// Version is the sweep file format version this package reads.
const Version = 1

// File is the on-disk sweep description. Every axis is optional; an empty
// axis contributes a single "scenario default" element to the cross-product
// rather than emptying it.
type File struct {
	// Version must equal Version.
	Version int `json:"version"`
	// Machines lists machine references: a named spec ("haswell"), or a
	// path to a spec file, resolved relative to the sweep file's directory.
	// The empty string means the scenario's own hierarchy/topology.
	Machines []string `json:"machines,omitempty"`
	// Scenarios lists registered scenario names. Required and non-empty.
	Scenarios []string `json:"scenarios,omitempty"`
	// Placements lists placement-policy overrides; "" means the scenario's
	// (or machine's) own placement.
	Placements []string `json:"placements,omitempty"`
	// Sampling lists sampling overrides applied on top of the scenario and
	// machine spec; set fields win.
	Sampling []machspec.Sampling `json:"sampling,omitempty"`
	// Reference runs every point on the reference simulation path.
	Reference bool `json:"reference,omitempty"`
}

// Decode reads a sweep file strictly, mirroring the machspec decoder: a
// typoed axis name must fail loudly, not silently sweep the default.
func Decode(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: trailing data after spec document")
	}
	if f.Version != Version {
		return nil, fmt.Errorf("sweep: unsupported version %d (want %d)", f.Version, Version)
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios listed")
	}
	return &f, nil
}

// LoadFile reads and decodes path.
func LoadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return Decode(strings.NewReader(string(b)))
}

// Point is one fully-resolved cell of the cross-product.
type Point struct {
	// Machine is the reference as written in the sweep file ("" = scenario
	// default); Spec is its resolution (nil for the default).
	Machine string
	Spec    *machspec.Spec
	// Scenario is the registered scenario.
	Scenario scenario.Scenario
	// Placement and Sampling are the per-point overrides ("", nil = none).
	Placement string
	Sampling  *machspec.Sampling
	// Reference selects the reference simulation path.
	Reference bool
	// Key is the content hash identifying the point's result — see Key.
	Key string
	// Skip is non-empty when the override combination cannot apply to the
	// scenario (scenario.SkipReason); the point is reported, not run.
	Skip string
}

// Options builds the scenario.Options the point runs under.
func (p Point) Options() scenario.Options {
	return scenario.Options{
		Reference: p.Reference,
		Placement: p.Placement,
		Machine:   p.Spec,
		Sampling:  p.Sampling,
	}
}

// Label is the point's human-readable identity for tables and logs.
func (p Point) Label() string {
	machine := p.Machine
	if machine == "" {
		machine = "default"
	} else if p.Spec != nil {
		machine = p.Spec.Name
	}
	parts := []string{machine, p.Scenario.Name}
	if p.Placement != "" {
		parts = append(parts, p.Placement)
	}
	if p.Sampling != nil {
		parts = append(parts, p.Sampling.String())
	}
	if p.Reference {
		parts = append(parts, "ref")
	}
	return strings.Join(parts, "/")
}

// keyDoc is the serialized identity a point's cache key hashes: the resolved
// machine (its canonical spec JSON, so a renamed file with identical content
// still hits), the scenario name (scenario definitions are code — a changed
// definition must be accompanied by a registry rename or a cache flush, the
// same contract the golden files live under), and the per-point overrides.
type keyDoc struct {
	Spec      string             `json:"spec,omitempty"`
	Scenario  string             `json:"scenario"`
	Placement string             `json:"placement,omitempty"`
	Sampling  *machspec.Sampling `json:"sampling,omitempty"`
	Reference bool               `json:"reference,omitempty"`
}

// Key computes the content-hash identity of a (spec, scenario, overrides)
// combination: sha256 over the canonical keyDoc JSON, hex-encoded.
func Key(spec *machspec.Spec, scenarioName, placement string, sampling *machspec.Sampling, reference bool) (string, error) {
	doc := keyDoc{Scenario: scenarioName, Placement: placement, Sampling: sampling, Reference: reference}
	if spec != nil {
		b, err := spec.JSON()
		if err != nil {
			return "", fmt.Errorf("sweep: hashing machine spec: %w", err)
		}
		doc.Spec = string(b)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("sweep: hashing point: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Expand resolves the file into the full cross-product, in deterministic
// axis order (machines outermost, sampling innermost). Machine file paths
// are resolved relative to baseDir (the sweep file's directory). Unknown
// scenarios and unresolvable machines are errors — a sweep with a typo
// should fail before the first simulation, not midway.
func (f *File) Expand(baseDir string) ([]Point, error) {
	machines := f.Machines
	if len(machines) == 0 {
		machines = []string{""}
	}
	placements := f.Placements
	if len(placements) == 0 {
		placements = []string{""}
	}
	samplings := make([]*machspec.Sampling, 0, len(f.Sampling))
	for i := range f.Sampling {
		samplings = append(samplings, &f.Sampling[i])
	}
	if len(samplings) == 0 {
		samplings = []*machspec.Sampling{nil}
	}

	specs := make([]*machspec.Spec, len(machines))
	for i, ref := range machines {
		if ref == "" {
			continue
		}
		resolved := ref
		if isPath(ref) && !filepath.IsAbs(ref) {
			resolved = filepath.Join(baseDir, ref)
		}
		sp, err := machspec.Resolve(resolved)
		if err != nil {
			return nil, fmt.Errorf("sweep: machine %q: %w", ref, err)
		}
		specs[i] = sp
	}

	points := make([]Point, 0, len(machines)*len(f.Scenarios)*len(placements)*len(samplings))
	for mi, machine := range machines {
		for _, name := range f.Scenarios {
			sc, ok := scenario.Get(name)
			if !ok {
				return nil, fmt.Errorf("sweep: unknown scenario %q", name)
			}
			for _, placement := range placements {
				for _, sampling := range samplings {
					p := Point{
						Machine:   machine,
						Spec:      specs[mi],
						Scenario:  sc,
						Placement: placement,
						Sampling:  sampling,
						Reference: f.Reference,
					}
					key, err := Key(p.Spec, sc.Name, placement, sampling, f.Reference)
					if err != nil {
						return nil, err
					}
					p.Key = key
					p.Skip = scenario.SkipReason(sc, p.Options())
					points = append(points, p)
				}
			}
		}
	}
	return points, nil
}

// isPath reports whether a machine reference is a file path rather than an
// embedded spec name — the same rule machspec.Resolve applies.
func isPath(ref string) bool {
	return strings.ContainsRune(ref, os.PathSeparator) || strings.HasSuffix(ref, ".json")
}
