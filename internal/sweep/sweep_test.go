package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machspec"
)

func u64(v uint64) *uint64 { return &v }

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"version": 1, "scenarios": ["stream_triad_1t"], "machine": ["haswell"]}`, "unknown field"},
		{"wrong version", `{"version": 2, "scenarios": ["stream_triad_1t"]}`, "unsupported version"},
		{"no scenarios", `{"version": 1, "machines": ["haswell"]}`, "no scenarios"},
		{"trailing garbage", `{"version": 1, "scenarios": ["stream_triad_1t"]} {}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Decode error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestExpand(t *testing.T) {
	f := &File{
		Version:    1,
		Machines:   []string{"haswell", "small"},
		Scenarios:  []string{"stream_triad_1t", "random_access_1t"},
		Placements: []string{"", "interleave"},
		Sampling:   []machspec.Sampling{{Period: u64(100)}, {Period: u64(200)}},
	}
	points, err := f.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("expanded %d points, want 2*2*2*2 = 16", len(points))
	}
	keys := make(map[string]bool)
	for _, p := range points {
		if p.Key == "" || len(p.Key) != 64 {
			t.Fatalf("point %s has malformed key %q", p.Label(), p.Key)
		}
		if keys[p.Key] {
			t.Fatalf("duplicate key for %s — an axis is not part of the hash", p.Label())
		}
		keys[p.Key] = true
		// Both machines are flat specs, so every interleave point must be
		// marked skipped, and only those.
		wantSkip := p.Placement == "interleave"
		if (p.Skip != "") != wantSkip {
			t.Errorf("point %s: skip = %q, want skip-ness %t", p.Label(), p.Skip, wantSkip)
		}
	}

	// Key stability: the same point expanded twice hashes identically.
	again, err := f.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Key != again[i].Key {
			t.Fatalf("key for %s not stable across expansions", points[i].Label())
		}
	}

	// Unknown scenario and unknown machine fail before anything runs.
	bad := &File{Version: 1, Scenarios: []string{"nope"}}
	if _, err := bad.Expand("."); err == nil || !strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Errorf("unknown scenario error = %v", err)
	}
	bad = &File{Version: 1, Machines: []string{"jureca"}, Scenarios: []string{"stream_triad_1t"}}
	if _, err := bad.Expand("."); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestExpandResolvesMachinePathsRelativeToSweepFile(t *testing.T) {
	dir := t.TempDir()
	spec, err := machspec.Named("small")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	f := &File{Version: 1, Machines: []string{"m.json"}, Scenarios: []string{"stream_triad_1t"}}
	points, err := f.Expand(dir)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Spec == nil || points[0].Spec.Name != "small" {
		t.Fatalf("machine path not resolved relative to sweep dir: %+v", points[0].Spec)
	}
	// Same content under a different path ⇒ same key as the named spec:
	// the hash covers the resolved machine, not the reference string.
	named := &File{Version: 1, Machines: []string{"small"}, Scenarios: []string{"stream_triad_1t"}}
	namedPoints, err := named.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Key != namedPoints[0].Key {
		t.Error("identical machine content under different references produced different keys")
	}
}

// TestRunCacheAndDedup is the tentpole acceptance test: an 8-point
// cross-product simulates every unique point once, a re-run against the
// same cache simulates nothing, and the cached bytes are identical to the
// simulated ones.
func TestRunCacheAndDedup(t *testing.T) {
	f := &File{
		Version:   1,
		Machines:  []string{"haswell", "small"},
		Scenarios: []string{"stream_triad_1t", "random_access_1t"},
		Sampling:  []machspec.Sampling{{Period: u64(100)}, {Period: u64(200)}},
	}
	points, err := f.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("expanded %d points, want 8", len(points))
	}

	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Jobs: 4, Cache: cache}
	first, sum1, err := r.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Simulated != 8 || sum1.CacheHits != 0 || sum1.Errors != 0 || sum1.Skipped != 0 {
		t.Fatalf("first run summary = %s, want 8 simulated", sum1)
	}
	for _, res := range first {
		if res.Source != SourceSimulated || len(res.Metrics) == 0 || res.Parsed == nil {
			t.Fatalf("first-run point %s: source=%s metrics=%dB", res.Point.Label(), res.Source, len(res.Metrics))
		}
	}

	// Re-run with a fresh cache handle over the same directory: zero
	// simulation, byte-identical results.
	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Jobs: 4, Cache: cache2}
	second, sum2, err := r2.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Simulated != 0 || sum2.CacheHits != 8 {
		t.Fatalf("cached re-run summary = %s, want 0 simulated / 8 cached", sum2)
	}
	if cache2.Hits() != 8 || cache2.Misses() != 0 {
		t.Fatalf("cache counters = %d hits / %d misses, want 8/0", cache2.Hits(), cache2.Misses())
	}
	for i := range first {
		if !bytes.Equal(first[i].Metrics, second[i].Metrics) {
			t.Fatalf("point %s: cached bytes differ from simulated bytes", first[i].Point.Label())
		}
	}
}

func TestRunDedupsEqualKeysWithinOneRun(t *testing.T) {
	// The same machine listed under two references with identical content:
	// equal keys, so the second set of points must reuse the first's run.
	dir := t.TempDir()
	spec, err := machspec.Named("small")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "small-copy.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	f := &File{Version: 1, Machines: []string{"small", "small-copy.json"}, Scenarios: []string{"stream_triad_1t"}}
	points, err := f.Expand(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Jobs: 2}
	results, sum, err := r.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Simulated != 1 || sum.Deduped != 1 {
		t.Fatalf("summary = %s, want 1 simulated / 1 deduped", sum)
	}
	if !bytes.Equal(results[0].Metrics, results[1].Metrics) {
		t.Fatal("deduped point's bytes differ from its twin")
	}
}

func TestRunSkipsAndErrorsDoNotAbort(t *testing.T) {
	f := &File{
		Version:    1,
		Scenarios:  []string{"stream_triad_1t", "random_access_1t"},
		Placements: []string{"", "interleave"}, // interleave on flat scenarios ⇒ skipped
	}
	points, err := f.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Jobs: 2}
	results, sum, err := r.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 2 || sum.Simulated != 2 || sum.Errors != 0 {
		t.Fatalf("summary = %s, want 2 simulated / 2 skipped", sum)
	}
	for _, res := range results {
		if res.Point.Skip != "" && res.Source != SourceSkipped {
			t.Fatalf("skipped point %s reported source %s", res.Point.Label(), res.Source)
		}
	}
}
