package telemetry

import (
	"bytes"
	"testing"
)

// The micro-benchmarks below are the analytic half of the EXPERIMENTS.md
// overhead argument: the macro delta on a figure-scale run sits inside
// machine noise, so the per-operation costs here bound it from above —
// boundaries-per-run × publish cost is the worst-case total.

func BenchmarkProgressPublish(b *testing.B) {
	b.ReportAllocs()
	var p Progress
	p.SetTotal(1 << 20)
	p.SetLevelCount(4)
	for i := 0; i < b.N; i++ {
		// One full instance-boundary publish: instances, CPU, 4 levels.
		p.SetInstances(uint64(i))
		p.SetCPU(uint64(i)*100, uint64(i)*80)
		for l := 0; l < 4; l++ {
			p.SetLevel(l, uint64(i), uint64(i/2))
		}
	}
}

func BenchmarkProgressSnapshot(b *testing.B) {
	b.ReportAllocs()
	var p Progress
	p.SetTotal(1 << 20)
	p.SetLevelCount(4)
	p.SetInstances(12345)
	var s ProgressSnapshot
	for i := 0; i < b.N; i++ {
		s = p.Snapshot()
	}
	_ = s
}

func BenchmarkCounterInc(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	c := r.Counter("bench_total", "bench counter")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench histogram",
		[]float64{0.001, 0.01, 0.1, 1, 10})
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%7) * 0.03)
	}
}

// BenchmarkWriteText is the scrape cost: it runs on the observer's
// clock, never the simulation's, so it only needs to be cheap enough
// for a polling scraper.
func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		c := r.Counter("bench_total", "bench counter", "shard", string(rune('a'+i)))
		c.Add(uint64(i) * 17)
	}
	h := r.Histogram("bench_seconds", "bench histogram",
		[]float64{0.001, 0.01, 0.1, 1, 10})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.004)
	}
	r.Gauge("bench_depth", "bench gauge").Set(3)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := r.WriteText(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
