package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition contract: a strict parser for
// Prometheus text-format v0.0.4. It is deliberately stricter than a scraping
// server needs to be — every sample must belong to a declared family, every
// histogram must be internally consistent — because its job is to pin OUR
// output, both in the format-compliance tests and in CI via cmd/promcheck.

// Sample is one exposition line: a metric name, its rendered label block
// (inner text only, "" when unlabelled) and the parsed value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Label is one parsed label pair.
type Label struct {
	Name, Value string
}

// Family is one metric family as declared by its HELP/TYPE header, with
// every sample that followed it.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Sample returns the sample with the given name and exact label block, or
// false when absent.
func (f Family) Sample(name, labels string) (Sample, bool) {
	for _, s := range f.Samples {
		if s.Name == name && s.Labels == labels {
			return s, true
		}
	}
	return Sample{}, false
}

// ParseText parses and validates a full exposition. It enforces:
//
//   - every sample is preceded by a # TYPE declaration for its family
//     (histogram samples may use the _bucket/_sum/_count suffixes);
//   - TYPE is one of counter, gauge, histogram, summary or untyped;
//   - no duplicate (name, labels) series;
//   - histogram families carry cumulative non-decreasing buckets, an +Inf
//     bucket, and a _count equal to the +Inf bucket, per label set.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		fams    []Family
		byName  = map[string]int{}
		seen    = map[string]bool{}
		lineNum = 0
	)
	for sc.Scan() {
		lineNum++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNum, err)
			}
			if kind == "" {
				continue // plain comment
			}
			idx, ok := byName[name]
			if !ok {
				byName[name] = len(fams)
				fams = append(fams, Family{Name: name})
				idx = byName[name]
			}
			f := &fams[idx]
			switch kind {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: second HELP for %s", lineNum, name)
				}
				f.Help = rest
			case "TYPE":
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: second TYPE for %s", lineNum, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNum, name)
				}
				switch rest {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNum, rest, name)
				}
				f.Type = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNum, err)
		}
		famName, ok := owningFamily(s.Name, byName, fams)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNum, s.Name)
		}
		key := s.Name + "{" + s.Labels + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNum, key)
		}
		seen[key] = true
		idx := byName[famName]
		fams[idx].Samples = append(fams[idx].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", fams[i].Name)
		}
		if fams[i].Type == TypeHistogram {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// owningFamily maps a sample name to its declared family: exact match, or a
// histogram/summary suffix of a declared histogram/summary family.
func owningFamily(sample string, byName map[string]int, fams []Family) (string, bool) {
	if idx, ok := byName[sample]; ok && fams[idx].Type != "" {
		return sample, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		idx, ok := byName[base]
		if !ok {
			continue
		}
		t := fams[idx].Type
		if t == TypeHistogram || t == "summary" {
			if suffix == "_bucket" && t != TypeHistogram {
				continue
			}
			return base, true
		}
	}
	return "", false
}

// parseComment splits a # line into (HELP|TYPE, metric name, remainder).
// Plain comments return kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	var tag string
	switch {
	case strings.HasPrefix(body, "HELP "):
		tag = "HELP"
	case strings.HasPrefix(body, "TYPE "):
		tag = "TYPE"
	default:
		return "", "", "", nil
	}
	body = strings.TrimPrefix(body, tag+" ")
	name, rest, ok := strings.Cut(body, " ")
	if !ok && tag == "HELP" {
		// HELP with empty docstring is legal.
		name, rest = body, ""
	} else if !ok {
		return "", "", "", fmt.Errorf("malformed %s line", tag)
	}
	if !metricNameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("%s for invalid metric name %q", tag, name)
	}
	if tag == "HELP" {
		rest = unescapeHelp(rest)
	}
	return tag, name, rest, nil
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexAny(rest, " \t")
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = rest[:brace]
		end, err := scanLabels(rest[brace+1:])
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels = rest[brace+1 : brace+1+end]
		rest = rest[brace+1+end+1:] // skip closing brace
	} else {
		if space < 0 {
			return s, fmt.Errorf("sample line %q missing value", line)
		}
		s.Name = rest[:space]
		rest = rest[space:]
	}
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: %w", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// scanLabels validates the inner label block and returns the index of the
// closing brace relative to the block start.
func scanLabels(s string) (int, error) {
	i := 0
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i, nil
		}
		// label name
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !labelNameRe.MatchString(s[start:i]) {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseLabels splits a rendered label block into pairs, unescaping values.
func ParseLabels(block string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(block) {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label block %q", block)
		}
		name := block[i : i+eq]
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return nil, fmt.Errorf("bad label block %q", block)
		}
		i++
		var b strings.Builder
		for i < len(block) && block[i] != '"' {
			if block[i] == '\\' && i+1 < len(block) {
				switch block[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(block[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(block[i])
			i++
		}
		if i >= len(block) {
			return nil, fmt.Errorf("bad label block %q", block)
		}
		i++ // closing quote
		if i < len(block) && block[i] == ',' {
			i++
		}
		out = append(out, Label{Name: name, Value: b.String()})
	}
	return out, nil
}

// checkHistogram validates cumulative-bucket semantics for every label set
// of one histogram family.
func checkHistogram(f *Family) error {
	type hist struct {
		buckets []Sample // _bucket samples in exposition order
		count   *Sample
		sum     *Sample
	}
	groups := map[string]*hist{}
	order := []string{}
	get := func(key string) *hist {
		h := groups[key]
		if h == nil {
			h = &hist{}
			groups[key] = h
			order = append(order, key)
		}
		return h
	}
	for i := range f.Samples {
		s := f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			labels, err := ParseLabels(s.Labels)
			if err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
			rest := make([]string, 0, len(labels))
			hasLe := false
			for _, l := range labels {
				if l.Name == "le" {
					hasLe = true
					continue
				}
				rest = append(rest, l.Name+"="+l.Value)
			}
			if !hasLe {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			sort.Strings(rest)
			get(strings.Join(rest, ",")).buckets = append(get(strings.Join(rest, ",")).buckets, s)
		case f.Name + "_count":
			get(canonLabels(s.Labels)).count = &f.Samples[i]
		case f.Name + "_sum":
			get(canonLabels(s.Labels)).sum = &f.Samples[i]
		default:
			return fmt.Errorf("%s: stray sample %s in histogram family", f.Name, s.Name)
		}
	}
	for _, key := range order {
		h := groups[key]
		if len(h.buckets) == 0 {
			return fmt.Errorf("%s{%s}: histogram without buckets", f.Name, key)
		}
		var prev float64
		var infSeen bool
		var infVal float64
		lastLe := math.Inf(-1)
		for _, b := range h.buckets {
			le, err := bucketLe(b.Labels)
			if err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
			if le <= lastLe {
				return fmt.Errorf("%s{%s}: bucket bounds not ascending", f.Name, key)
			}
			lastLe = le
			if b.Value < prev {
				return fmt.Errorf("%s{%s}: buckets not cumulative (le=%g: %g < %g)", f.Name, key, le, b.Value, prev)
			}
			prev = b.Value
			if math.IsInf(le, 1) {
				infSeen = true
				infVal = b.Value
			}
		}
		if !infSeen {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, key)
		}
		if h.count == nil || h.sum == nil {
			return fmt.Errorf("%s{%s}: missing _count or _sum", f.Name, key)
		}
		if h.count.Value != infVal {
			return fmt.Errorf("%s{%s}: _count %g != +Inf bucket %g", f.Name, key, h.count.Value, infVal)
		}
	}
	return nil
}

// canonLabels sorts a label block's pairs so _sum/_count group with their
// buckets regardless of label order.
func canonLabels(block string) string {
	labels, err := ParseLabels(block)
	if err != nil {
		return block
	}
	pairs := make([]string, 0, len(labels))
	for _, l := range labels {
		pairs = append(pairs, l.Name+"="+l.Value)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func bucketLe(block string) (float64, error) {
	labels, err := ParseLabels(block)
	if err != nil {
		return 0, err
	}
	for _, l := range labels {
		if l.Name == "le" {
			return parseValue(l.Value)
		}
	}
	return 0, fmt.Errorf("bucket %q missing le", block)
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}
