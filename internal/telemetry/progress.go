package telemetry

import "sync/atomic"

// ProgressLevels bounds the per-cache-level slots a Progress carries. Four
// covers every machine spec in the repository (L1/L2/L3 + one spare); deeper
// hierarchies report their first four levels.
const ProgressLevels = 4

// Progress is a lock-free mailbox between one running simulation and any
// number of observers (SSE streams, TTY progress lines, metrics summaries).
// The simulation publishes at its existing instance-boundary poll points —
// the same quiescent points used for cancellation and checkpoint demand —
// with plain atomic stores: no allocation, no locks, no wall clock. When
// nobody reads it, the cost is the stores and nothing else.
//
// Writers use the Set* methods (all //repro:noalloc); observers call
// Snapshot, which assembles a consistent-enough view from the atomics. The
// fields are monotone per run, so torn reads across fields only ever show a
// slightly stale mix, never a fabricated value.
type Progress struct {
	instancesDone  atomic.Uint64
	instancesTotal atomic.Uint64
	cycles         atomic.Uint64
	instructions   atomic.Uint64
	levels         atomic.Uint32
	hits           [ProgressLevels]atomic.Uint64
	fills          [ProgressLevels]atomic.Uint64
}

// SetTotal publishes the expected instance count (threads × iterations, or
// the CG iteration budget for HPCG). Zero means unknown.
//
//repro:noalloc
func (p *Progress) SetTotal(n uint64) { p.instancesTotal.Store(n) }

// SetInstances publishes the absolute number of completed instances.
//
//repro:noalloc
func (p *Progress) SetInstances(done uint64) { p.instancesDone.Store(done) }

// SetCPU publishes the simulated cycle and instruction totals.
//
//repro:noalloc
func (p *Progress) SetCPU(cycles, instructions uint64) {
	p.cycles.Store(cycles)
	p.instructions.Store(instructions)
}

// SetLevelCount publishes how many cache-level slots are valid.
//
//repro:noalloc
func (p *Progress) SetLevelCount(n int) {
	if n > ProgressLevels {
		n = ProgressLevels
	}
	if n < 0 {
		n = 0
	}
	p.levels.Store(uint32(n))
}

// SetLevel publishes hit and fill totals for cache level i. Out-of-range
// levels are dropped (the hierarchy is deeper than the mailbox).
//
//repro:noalloc
func (p *Progress) SetLevel(i int, hits, fills uint64) {
	if i < 0 || i >= ProgressLevels {
		return
	}
	p.hits[i].Store(hits)
	p.fills[i].Store(fills)
}

// LevelProgress is one cache level's running totals.
type LevelProgress struct {
	Hits  uint64 `json:"hits"`
	Fills uint64 `json:"fills"`
}

// ProgressSnapshot is an observer's copy of a Progress. Plain data, fixed
// size: taking one does not allocate.
type ProgressSnapshot struct {
	InstancesDone  uint64
	InstancesTotal uint64
	Cycles         uint64
	Instructions   uint64
	NumLevels      int
	Levels         [ProgressLevels]LevelProgress
}

// Snapshot reads the current state.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		InstancesDone:  p.instancesDone.Load(),
		InstancesTotal: p.instancesTotal.Load(),
		Cycles:         p.cycles.Load(),
		Instructions:   p.instructions.Load(),
		NumLevels:      int(p.levels.Load()),
	}
	for i := 0; i < s.NumLevels; i++ {
		s.Levels[i] = LevelProgress{Hits: p.hits[i].Load(), Fills: p.fills[i].Load()}
	}
	return s
}

// Percent returns completion in [0,100], or -1 when the total is unknown.
func (s ProgressSnapshot) Percent() float64 {
	if s.InstancesTotal == 0 {
		return -1
	}
	return 100 * float64(s.InstancesDone) / float64(s.InstancesTotal)
}
