// Package telemetry is the repository's dependency-free metrics core: atomic
// counters, gauges and fixed-bucket histograms behind a registry that writes
// Prometheus text-format v0.0.4 exposition. It exists so the production
// surface (the simd server, the sweep engine, the CLIs) can be observed
// without perturbing the property the whole repository is built on —
// byte-exact deterministic simulation:
//
//   - Hot paths never pay for observation. Updating an instrument is one or
//     two atomic operations; no instrument ever reads the wall clock
//     (callers that want durations measure them outside the simulation and
//     pass the value in), allocates, or takes a lock. The package is on the
//     reprolint detrand surface and its update paths carry //repro:noalloc.
//   - Scrapes snapshot, writers don't. All aggregation (cumulative
//     histogram buckets, family grouping, deterministic ordering) happens
//     at scrape time in WriteText; the write side is wait-free.
//   - Exposition is pinned. The text format is exercised by a
//     format-compliance test suite built on this package's own parser
//     (parse.go), which cmd/promcheck reuses to validate live /metrics
//     output in CI.
//
// Instruments are registered once (typically at server construction) and
// updated forever; registering the same (name, labels) series twice, or the
// same family under two types, panics — both are programming errors, not
// runtime conditions.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increases the counter.
//
//repro:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increases the counter by one.
//
//repro:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
//
//repro:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative deltas decrease it).
//
//repro:noalloc
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: upper bounds are chosen at
// registration and never change, so an observation is a linear scan over a
// handful of bounds plus two atomic adds. The +Inf bucket is implicit.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency bucket layout (seconds), spanning the
// 1ms..10s range a simulation job or a checkpoint write lands in.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one value.
//
//repro:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Metric type names, as they appear on exposition TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one registered (labels, instrument) pair of a family.
type series struct {
	labels  string // rendered label block without braces ("" when unlabelled)
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name: one HELP/TYPE header,
// many label sets.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]bool
}

// Registry holds registered instruments and writes their exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter registers (or re-uses the family of) a counter series. Labels are
// alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, &series{labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time — the
// natural shape for state that already lives under someone else's lock
// (queue depth, drain flag): the owner pays nothing until a scrape asks.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, TypeGauge, &series{labels: renderLabels(labels), gaugeFn: fn})
}

// Histogram registers a fixed-bucket histogram series. Bounds must be
// ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending at %v", name, bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(name, help, TypeHistogram, &series{labels: renderLabels(labels), hist: h})
	return h
}

func (r *Registry) register(name, help, typ string, s *series) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]bool)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	if f.byLabels[s.labels] {
		panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, s.labels))
	}
	f.byLabels[s.labels] = true
	f.series = append(f.series, s)
}

// renderLabels validates alternating key/value pairs and renders them in
// the given order (callers pass a fixed order, so exposition is stable).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if !labelNameRe.MatchString(kv[i]) || kv[i] == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q", kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the text-format label escapes: backslash, quote
// and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// ContentType is the scrape response content type for this exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes the full exposition: families sorted by name, series
// sorted by label block, HELP and TYPE once per family. Instrument values
// are read atomically during the write — writers never block on a scrape.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		srs := append([]*series(nil), f.series...)
		sort.Slice(srs, func(i, j int) bool { return srs[i].labels < srs[j].labels })
		for _, s := range srs {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.counter != nil:
		writeSample(b, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		writeSample(b, f.name, s.labels, float64(s.gauge.Value()))
	case s.gaugeFn != nil:
		writeSample(b, f.name, s.labels, s.gaugeFn())
	case s.hist != nil:
		h := s.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(b, f.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bound)+`"`), float64(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(b, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(cum))
		writeSample(b, f.name+"_sum", s.labels, h.Sum())
		writeSample(b, f.name+"_count", s.labels, float64(cum))
	}
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// formatFloat renders a sample value the way Prometheus clients do: shortest
// representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
