package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionFormatCompliance is the format contract: everything the
// registry can emit must round-trip through the strict v0.0.4 parser. The
// registry under test exercises every instrument kind, labels needing
// escapes, multi-series families and an empty histogram.
func TestExpositionFormatCompliance(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Terminal job outcomes.", "outcome", "done")
	c2 := r.Counter("jobs_total", "Terminal job outcomes.", "outcome", "failed")
	g := r.Gauge("queue_depth", "Jobs waiting to run.")
	r.GaugeFunc("draining", "1 while a drain is in progress.", func() float64 { return 1 })
	h := r.Histogram("run_seconds", "Wall time per simulation.", []float64{0.1, 1, 10})
	r.Histogram("empty_seconds", "Never observed.", []float64{1})
	r.Counter("weird_total", `Help with \ backslash and`+"\n"+`newline.`, "path", `C:\tmp "x"`+"\n")

	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition rejected by parser: %v\nexposition:\n%s", err, text)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	jt := byName["jobs_total"]
	if jt.Type != TypeCounter || jt.Help != "Terminal job outcomes." {
		t.Fatalf("jobs_total family = %+v", jt)
	}
	if s, ok := jt.Sample("jobs_total", `outcome="done"`); !ok || s.Value != 3 {
		t.Fatalf("jobs_total{outcome=done} = %+v ok=%v", s, ok)
	}
	if s, ok := jt.Sample("jobs_total", `outcome="failed"`); !ok || s.Value != 1 {
		t.Fatalf("jobs_total{outcome=failed} = %+v ok=%v", s, ok)
	}

	if s, ok := byName["queue_depth"].Sample("queue_depth", ""); !ok || s.Value != 7 {
		t.Fatalf("queue_depth = %+v ok=%v", s, ok)
	}
	if s, ok := byName["draining"].Sample("draining", ""); !ok || s.Value != 1 {
		t.Fatalf("draining = %+v ok=%v", s, ok)
	}

	rs := byName["run_seconds"]
	if rs.Type != TypeHistogram {
		t.Fatalf("run_seconds type = %q", rs.Type)
	}
	wantBuckets := map[string]float64{
		`le="0.1"`:  1,
		`le="1"`:    2,
		`le="10"`:   2,
		`le="+Inf"`: 3,
	}
	for labels, want := range wantBuckets {
		s, ok := rs.Sample("run_seconds_bucket", labels)
		if !ok || s.Value != want {
			t.Fatalf("run_seconds_bucket{%s} = %+v ok=%v want %g", labels, s, ok, want)
		}
	}
	if s, _ := rs.Sample("run_seconds_count", ""); s.Value != 3 {
		t.Fatalf("run_seconds_count = %g", s.Value)
	}
	if s, _ := rs.Sample("run_seconds_sum", ""); math.Abs(s.Value-99.55) > 1e-9 {
		t.Fatalf("run_seconds_sum = %g", s.Value)
	}

	// Escapes round-trip: the label value comes back with its original
	// backslash, quote and newline.
	wt := byName["weird_total"]
	if wt.Help != `Help with \ backslash and`+"\n"+`newline.` {
		t.Fatalf("weird_total help = %q", wt.Help)
	}
	if len(wt.Samples) != 1 {
		t.Fatalf("weird_total samples = %+v", wt.Samples)
	}
	labels, err := ParseLabels(wt.Samples[0].Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0].Value != `C:\tmp "x"`+"\n" {
		t.Fatalf("escaped label round-trip = %+v", labels)
	}
}

// TestExpositionDeterministic pins family and series ordering: two scrapes
// of an idle registry are byte-identical, and families appear sorted.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Counter("aa_total", "a")
	r.Counter("mm_total", "m", "k", "b")
	r.Counter("mm_total", "m", "k", "a")

	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("scrapes differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	idxA := strings.Index(b1.String(), "aa_total")
	idxM := strings.Index(b1.String(), "mm_total")
	idxZ := strings.Index(b1.String(), "zz_total")
	if !(idxA < idxM && idxM < idxZ) {
		t.Fatalf("families not sorted:\n%s", b1.String())
	}
	// Series within a family sorted by label block.
	ka := strings.Index(b1.String(), `mm_total{k="a"}`)
	kb := strings.Index(b1.String(), `mm_total{k="b"}`)
	if ka < 0 || kb < 0 || ka > kb {
		t.Fatalf("series not sorted:\n%s", b1.String())
	}
}

// TestParserRejectsMalformed pins the strictness promises the CI smoke
// relies on: promcheck must fail on broken exposition, not shrug.
func TestParserRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no type", "foo 1\n"},
		{"unknown type", "# TYPE foo banana\nfoo 1\n"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"bad value", "# TYPE foo counter\nfoo one\n"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"b 1\n"},
		{"bad escape", "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n"},
		{"type after samples", "# TYPE foo counter\nfoo 1\n# TYPE foo counter\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("parser accepted malformed input:\n%s", tc.in)
			}
		})
	}
}

// TestParserAcceptsForeignExposition checks the parser is not overfitted to
// our writer: timestamps, plain comments, blank lines and summaries parse.
func TestParserAcceptsForeignExposition(t *testing.T) {
	in := `# scraped from somewhere else
# HELP http_requests_total The total number of HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="post",code="200"} 1027 1395066363000

# TYPE rpc_duration_seconds summary
rpc_duration_seconds{quantile="0.5"} 4.27
rpc_duration_seconds_sum 1.7560473e+07
rpc_duration_seconds_count 2693
`
	fams, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %+v", fams)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("x_total", "x")
	mustPanic("duplicate series", func() { r.Counter("x_total", "x") })
	mustPanic("type clash", func() { r.Gauge("x_total", "x") })
	mustPanic("bad metric name", func() { r.Counter("x-y", "x") })
	mustPanic("bad label name", func() { r.Counter("y_total", "y", "0bad", "v") })
	mustPanic("le label", func() { r.Counter("z_total", "z", "le", "v") })
	mustPanic("odd labels", func() { r.Counter("w_total", "w", "k") })
	mustPanic("bounds not ascending", func() { r.Histogram("h_seconds", "h", []float64{1, 1}) })
}

// TestConcurrentUpdatesAndScrapes drives writers and scrapers in parallel;
// under -race this pins the lock-free write-side claim, and every scrape
// must still parse.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	h := r.Histogram("lat_seconds", "lat", DefBuckets)
	g := r.Gauge("depth", "depth")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				c.Inc()
				g.Set(int64(i % 10))
				h.Observe(float64(i%100) / 100)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, b.String())
		}
	}
	close(stop)
	wg.Wait()

	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("writers made no progress")
	}
}

func TestProgressSnapshot(t *testing.T) {
	var p Progress
	p.SetTotal(128)
	p.SetInstances(32)
	p.SetCPU(1000, 2000)
	p.SetLevelCount(2)
	p.SetLevel(0, 90, 10)
	p.SetLevel(1, 8, 2)
	p.SetLevel(ProgressLevels+3, 1, 1) // out of range: dropped

	s := p.Snapshot()
	if s.InstancesDone != 32 || s.InstancesTotal != 128 {
		t.Fatalf("instances = %d/%d", s.InstancesDone, s.InstancesTotal)
	}
	if s.Cycles != 1000 || s.Instructions != 2000 {
		t.Fatalf("cpu = %d/%d", s.Cycles, s.Instructions)
	}
	if s.NumLevels != 2 || s.Levels[0] != (LevelProgress{90, 10}) || s.Levels[1] != (LevelProgress{8, 2}) {
		t.Fatalf("levels = %+v", s)
	}
	if got := s.Percent(); got != 25 {
		t.Fatalf("percent = %g", got)
	}
	if (ProgressSnapshot{}).Percent() != -1 {
		t.Fatal("unknown total should report -1")
	}
	// Level counts beyond the slot array clamp instead of overflowing.
	p.SetLevelCount(99)
	if p.Snapshot().NumLevels != ProgressLevels {
		t.Fatalf("level clamp = %d", p.Snapshot().NumLevels)
	}
}

// TestInstrumentsAllocFree pins the hot-path contract the noalloc analyzer
// enforces statically: updating instruments performs zero allocations.
func TestInstrumentsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "a")
	g := r.Gauge("b", "b")
	h := r.Histogram("c_seconds", "c", DefBuckets)
	var p Progress
	n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		h.Observe(0.42)
		p.SetInstances(1)
		p.SetCPU(2, 3)
		p.SetLevel(0, 4, 5)
		_ = p.Snapshot()
	})
	if n != 0 {
		t.Fatalf("instrument updates allocate: %g allocs/op", n)
	}
}
