package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary encoding: a compact varint stream for large traces. Layout:
//
//	magic "BSCT" | version uvarint | nTasks uvarint | nThreads uvarint |
//	duration uvarint | record*
//
// record:
//
//	deltaTime uvarint (vs previous record) | task uvarint | thread uvarint |
//	nPairs uvarint | (type uvarint, value varint)*
//
// Delta-encoded timestamps make long monotone traces small; records must be
// globally time-sorted (use Merge first).
const binaryMagic = "BSCT"

const binaryVersion = 1

// ErrBadMagic reports a stream that is not a binary trace.
var ErrBadMagic = errors.New("trace: bad binary trace magic")

// WriteBinary encodes records (which must be time-sorted) to w.
func WriteBinary(w io.Writer, nTasks, nThreads int, durationNs uint64, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{binaryVersion, uint64(nTasks), uint64(nThreads), durationNs, uint64(len(records))} {
		if err := writeUvarint(v); err != nil {
			return err
		}
	}
	var prev uint64
	for i, r := range records {
		if r.TimeNs < prev {
			return fmt.Errorf("trace: record %d out of order (%d < %d); Merge before WriteBinary", i, r.TimeNs, prev)
		}
		if err := writeUvarint(r.TimeNs - prev); err != nil {
			return err
		}
		prev = r.TimeNs
		if err := writeUvarint(uint64(r.Task)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.Thread)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(r.Pairs))); err != nil {
			return err
		}
		for _, p := range r.Pairs {
			if err := writeUvarint(uint64(p.Type)); err != nil {
				return err
			}
			if err := writeVarint(p.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace.
func ReadBinary(r io.Reader) (nTasks, nThreads int, durationNs uint64, records []Record, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err = io.ReadFull(br, magic); err != nil {
		return 0, 0, 0, nil, err
	}
	if string(magic) != binaryMagic {
		return 0, 0, 0, nil, ErrBadMagic
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if ver != binaryVersion {
		return 0, 0, 0, nil, fmt.Errorf("trace: unsupported binary version %d", ver)
	}
	hdr := make([]uint64, 4)
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	nTasks, nThreads, durationNs = int(hdr[0]), int(hdr[1]), hdr[2]
	count := hdr[3]
	// Preallocation is an optimization, never a promise to the header: a
	// corrupt (or hostile) stream can claim 2^60 records in a few bytes,
	// and allocating that up front would abort the process before the
	// decode loop ever hits the honest truncation error. Cap the hint and
	// let append grow the slice if the records really are there.
	const maxPrealloc = 1 << 16
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	records = make([]Record, 0, prealloc)
	var now uint64
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, 0, nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		now += delta
		task, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		thread, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		nPairs, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		pairCap := nPairs
		if pairCap > 64 {
			pairCap = 64 // same cap-the-hint rule as the record count
		}
		rec := Record{TimeNs: now, Task: int(task), Thread: int(thread),
			Pairs: make([]TypeValue, 0, pairCap)}
		for j := uint64(0); j < nPairs; j++ {
			typ, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, 0, 0, nil, err
			}
			val, err := binary.ReadVarint(br)
			if err != nil {
				return 0, 0, 0, nil, err
			}
			rec.Pairs = append(rec.Pairs, TypeValue{Type: uint32(typ), Value: val})
		}
		records = append(records, rec)
	}
	return nTasks, nThreads, durationNs, records, nil
}
