package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedRecords builds a representative trace for the fuzz corpus: two
// threads, region boundaries, a full PEBS sample record with counters, an
// allocation record and zero-length-pair records.
func fuzzSeedRecords() []Record {
	return []Record{
		{TimeNs: 0, Task: 1, Thread: 1, Pairs: []TypeValue{{Type: TypeRegion, Value: 3}}},
		{TimeNs: 10, Task: 1, Thread: 2, Pairs: []TypeValue{{Type: TypeRegion, Value: 3}}},
		{TimeNs: 25, Task: 1, Thread: 1, Pairs: []TypeValue{
			{Type: TypeSampleAddr, Value: 0x2adf00001000},
			{Type: TypeSampleLatency, Value: 230},
			{Type: TypeSampleSource, Value: 3},
			{Type: TypeSampleStore, Value: 1},
			{Type: TypeSampleIP, Value: 0x400123},
			{Type: TypeSampleStack, Value: 7},
			{Type: TypeSampleSize, Value: 8},
			{Type: TypeCounterBase, Value: 1234},
			{Type: TypeCounterBase + 1, Value: 99999},
		}},
		{TimeNs: 25, Task: 1, Thread: 2, Pairs: []TypeValue{
			{Type: TypeAllocAddr, Value: 0x2adf00002000},
			{Type: TypeAllocSize, Value: 4096},
			{Type: TypeAllocStack, Value: 2},
		}},
		{TimeNs: 31, Task: 1, Thread: 1, Pairs: nil},
		{TimeNs: 40, Task: 1, Thread: 1, Pairs: []TypeValue{{Type: TypeRegion, Value: 0}}},
		{TimeNs: 41, Task: 1, Thread: 2, Pairs: []TypeValue{{Type: TypeRegion, Value: 0}}},
	}
}

func encodeSeed(t interface{ Fatal(...any) }, nTasks, nThreads int, dur uint64, recs []Record) []byte {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nTasks, nThreads, dur, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeBinary fuzzes the binary trace decoder: whatever the input,
// ReadBinary must return an error or a decodable trace — never panic or
// OOM on a hostile header — and any trace it accepts must re-encode
// stably: encode(decode(x)) is a fixed point of decode∘encode.
func FuzzDecodeBinary(f *testing.F) {
	recs := fuzzSeedRecords()
	f.Add(encodeSeed(f, 1, 2, 41, recs))
	f.Add(encodeSeed(f, 1, 1, 0, nil))
	f.Add(encodeSeed(f, 4, 8, 1<<40, recs[2:3]))
	// Truncations and corruptions of a valid stream.
	valid := encodeSeed(f, 1, 2, 41, recs)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:5])
	f.Add([]byte("BSCT"))
	f.Add([]byte("not a trace"))
	corrupt := append([]byte(nil), valid...)
	corrupt[6] = 0xff // inflate a header varint
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		nTasks, nThreads, dur, decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we got here alive
		}
		// Accepted input: the decoded records must be in time order (the
		// deltas are unsigned, so this is structural) and re-encodable.
		var enc1 bytes.Buffer
		if err := WriteBinary(&enc1, nTasks, nThreads, dur, decoded); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		nT2, nTh2, dur2, decoded2, err := ReadBinary(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if nT2 != nTasks || nTh2 != nThreads || dur2 != dur || len(decoded2) != len(decoded) {
			t.Fatalf("header drifted: (%d,%d,%d,%d) -> (%d,%d,%d,%d)",
				nTasks, nThreads, dur, len(decoded), nT2, nTh2, dur2, len(decoded2))
		}
		var enc2 bytes.Buffer
		if err := WriteBinary(&enc2, nT2, nTh2, dur2, decoded2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode(decode(x)) is not stable: %d vs %d bytes", enc1.Len(), enc2.Len())
		}
	})
}

// TestReadBinaryHostileHeader pins the preallocation cap directly: a tiny
// stream whose header claims 2^60 records must fail with a truncation
// error, not abort on allocation.
func TestReadBinaryHostileHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 1, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Header layout: "BSCT" version nTasks nThreads duration count — for
	// this empty trace each field is a single-byte varint, so count is the
	// last byte. Replace it with a varint claiming 2^60 records.
	b = b[:len(b)-1]
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10} // 1<<60
	b = append(b, huge...)
	if _, _, _, _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("hostile record count accepted")
	}
	// Same for the per-record pair count.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, 1, 1, 0, []Record{{TimeNs: 1, Task: 1, Thread: 1}}); err != nil {
		t.Fatal(err)
	}
	b2 := buf2.Bytes()
	b2 = b2[:len(b2)-1] // nPairs byte of the single record
	b2 = append(b2, huge...)
	if _, _, _, _, err := ReadBinary(bytes.NewReader(b2)); err == nil {
		t.Fatal("hostile pair count accepted")
	}
}
