package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Labels is the PCF metadata: human-readable names for event types and for
// enumerated values of those types (region ids, data sources, ...).
type Labels struct {
	// Types maps an event type to its label.
	Types map[uint32]string
	// Values maps an event type to its value labels.
	Values map[uint32]map[int64]string
}

// NewLabels creates an empty label set.
func NewLabels() *Labels {
	return &Labels{
		Types:  make(map[uint32]string),
		Values: make(map[uint32]map[int64]string),
	}
}

// SetType names an event type.
func (l *Labels) SetType(typ uint32, name string) { l.Types[typ] = name }

// SetValue names one value of an event type.
func (l *Labels) SetValue(typ uint32, val int64, name string) {
	m, ok := l.Values[typ]
	if !ok {
		m = make(map[int64]string)
		l.Values[typ] = m
	}
	m[val] = name
}

// TypeName returns the label of an event type, or a numeric fallback.
func (l *Labels) TypeName(typ uint32) string {
	if n, ok := l.Types[typ]; ok {
		return n
	}
	return fmt.Sprintf("type_%d", typ)
}

// ValueName returns the label of a value, or a numeric fallback.
func (l *Labels) ValueName(typ uint32, val int64) string {
	if m, ok := l.Values[typ]; ok {
		if n, ok := m[val]; ok {
			return n
		}
	}
	return strconv.FormatInt(val, 10)
}

// WritePCF serializes the labels in a simplified PCF form:
//
//	EVENT_TYPE
//	0 <type> <label>
//	VALUES
//	<value> <label>
//	...
func (l *Labels) WritePCF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	types := make([]uint32, 0, len(l.Types))
	for t := range l.Types {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		if _, err := fmt.Fprintf(bw, "EVENT_TYPE\n0 %d %s\n", t, l.Types[t]); err != nil {
			return err
		}
		if vals, ok := l.Values[t]; ok && len(vals) > 0 {
			if _, err := fmt.Fprintln(bw, "VALUES"); err != nil {
				return err
			}
			keys := make([]int64, 0, len(vals))
			for v := range vals {
				keys = append(keys, v)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, v := range keys {
				if _, err := fmt.Fprintf(bw, "%d %s\n", v, vals[v]); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParsePCF reads labels previously written by WritePCF.
func ParsePCF(r io.Reader) (*Labels, error) {
	l := NewLabels()
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	var curType uint32
	var haveType, inValues bool
	lineNo := 0
	for s.Scan() {
		lineNo++
		line := strings.TrimSpace(s.Text())
		switch {
		case line == "":
			continue
		case line == "EVENT_TYPE":
			inValues = false
			haveType = false
		case line == "VALUES":
			if !haveType {
				return nil, fmt.Errorf("trace: pcf line %d: VALUES before EVENT_TYPE", lineNo)
			}
			inValues = true
		case inValues:
			val, name, err := splitNumLabel(line)
			if err != nil {
				return nil, fmt.Errorf("trace: pcf line %d: %w", lineNo, err)
			}
			l.SetValue(curType, val, name)
		default:
			// "0 <type> <label>"
			fields := strings.SplitN(line, " ", 3)
			if len(fields) < 3 {
				return nil, fmt.Errorf("trace: pcf line %d: bad type line %q", lineNo, line)
			}
			t, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: pcf line %d: %w", lineNo, err)
			}
			curType = uint32(t)
			haveType = true
			l.SetType(curType, fields[2])
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

func splitNumLabel(line string) (int64, string, error) {
	fields := strings.SplitN(line, " ", 2)
	if len(fields) < 2 {
		return 0, "", fmt.Errorf("bad value line %q", line)
	}
	v, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, "", err
	}
	return v, fields[1], nil
}
