// Package trace implements an Extrae/Paraver-like event trace format. A
// trace is a chronological stream of records; each record carries a
// timestamp, the emitting (task, thread) pair and a list of (type, value)
// event pairs — the same shape as Paraver PRV event records, where one
// timestamp may carry several semantic types (a PEBS sample, for example, is
// one record with address, latency, source, IP and call-stack pairs).
//
// Two encodings are provided: a PRV-compatible text form for interchange and
// a compact varint binary form for large traces, plus the PCF metadata file
// that maps numeric event types and values to human-readable labels.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Event type identifiers. The numbering follows Extrae conventions: user
// function events in the 60000xxx range, sampling events in a dedicated
// range, hardware counters in the 42000xxx range.
const (
	// TypeRegion marks entry (value = region id) and exit (value = 0) of an
	// instrumented user function / code region.
	TypeRegion uint32 = 60000019

	// Sampling event types: one PEBS sample emits one record holding these.
	TypeSampleAddr    uint32 = 32000001 // referenced address
	TypeSampleLatency uint32 = 32000002 // access cost in cycles
	TypeSampleSource  uint32 = 32000003 // data source (memhier.DataSource)
	TypeSampleStore   uint32 = 32000004 // 1 store, 0 load
	TypeSampleIP      uint32 = 32000005 // instruction pointer
	TypeSampleStack   uint32 = 32000006 // call-stack id
	TypeSampleSize    uint32 = 32000007 // access width in bytes

	// Memory-object event types (allocation instrumentation).
	TypeAllocAddr  uint32 = 33000001 // new object base address
	TypeAllocSize  uint32 = 33000002 // new object size
	TypeAllocStack uint32 = 33000003 // allocation call-stack id
	TypeFreeAddr   uint32 = 33000004 // freed object base address

	// TypeCounterBase + cpu.CounterID carries a hardware counter snapshot.
	TypeCounterBase uint32 = 42000000
)

// Record is one trace record: several (type, value) pairs at one timestamp
// on one software thread.
type Record struct {
	// TimeNs is the simulated wall-clock timestamp in nanoseconds.
	TimeNs uint64
	// Task and Thread identify the emitting object (1-based, like Paraver).
	Task, Thread int
	// Pairs are the event (type, value) pairs, in emission order.
	Pairs []TypeValue
}

// TypeValue is one event type/value pair.
type TypeValue struct {
	Type  uint32
	Value int64
}

// Get returns the value of the first pair with the given type.
func (r *Record) Get(typ uint32) (int64, bool) {
	for _, p := range r.Pairs {
		if p.Type == typ {
			return p.Value, true
		}
	}
	return 0, false
}

// Has reports whether the record carries the given event type.
func (r *Record) Has(typ uint32) bool {
	_, ok := r.Get(typ)
	return ok
}

// Writer emits records in PRV text form. Records must be written in
// non-decreasing time order per (task, thread); the Merger handles global
// ordering across threads.
type Writer struct {
	w       *bufio.Writer
	records uint64
	lastNs  map[[2]int]uint64
	closed  bool
}

// NewWriter wraps w. The PRV header line is written immediately; durationNs
// may be 0 if unknown at creation (Paraver tolerates it for our purposes).
func NewWriter(w io.Writer, nTasks, nThreads int, durationNs uint64) (*Writer, error) {
	if nTasks <= 0 || nThreads <= 0 {
		return nil, fmt.Errorf("trace: need at least one task and thread")
	}
	bw := bufio.NewWriter(w)
	// Simplified PRV header: #Paraver (duration):nTasks:nThreads
	if _, err := fmt.Fprintf(bw, "#Paraver (%d):%d:%d\n", durationNs, nTasks, nThreads); err != nil {
		return nil, err
	}
	return &Writer{w: bw, lastNs: make(map[[2]int]uint64)}, nil
}

// ErrTimeRegression reports out-of-order writes on one thread.
var ErrTimeRegression = errors.New("trace: record time precedes previous record on same thread")

// Write emits one record.
func (tw *Writer) Write(r Record) error {
	if tw.closed {
		return errors.New("trace: write after Close")
	}
	if len(r.Pairs) == 0 {
		return errors.New("trace: record with no event pairs")
	}
	if r.Task <= 0 || r.Thread <= 0 {
		return fmt.Errorf("trace: task/thread must be 1-based, got %d/%d", r.Task, r.Thread)
	}
	key := [2]int{r.Task, r.Thread}
	if last, ok := tw.lastNs[key]; ok && r.TimeNs < last {
		return fmt.Errorf("%w: %d < %d", ErrTimeRegression, r.TimeNs, last)
	}
	tw.lastNs[key] = r.TimeNs
	// Paraver event record: 2:cpu:appl:task:thread:time:type:value...
	var sb strings.Builder
	fmt.Fprintf(&sb, "2:1:1:%d:%d:%d", r.Task, r.Thread, r.TimeNs)
	for _, p := range r.Pairs {
		fmt.Fprintf(&sb, ":%d:%d", p.Type, p.Value)
	}
	sb.WriteByte('\n')
	if _, err := tw.w.WriteString(sb.String()); err != nil {
		return err
	}
	tw.records++
	return nil
}

// Records returns the number of records written.
func (tw *Writer) Records() uint64 { return tw.records }

// Close flushes buffered output. The underlying writer is not closed.
func (tw *Writer) Close() error {
	if tw.closed {
		return nil
	}
	tw.closed = true
	return tw.w.Flush()
}

// Reader parses PRV text traces produced by Writer.
type Reader struct {
	s        *bufio.Scanner
	nTasks   int
	nThreads int
	duration uint64
	line     int
}

// NewReader parses the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	if !s.Scan() {
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("trace: empty input")
	}
	header := s.Text()
	var dur uint64
	var tasks, threads int
	if _, err := fmt.Sscanf(header, "#Paraver (%d):%d:%d", &dur, &tasks, &threads); err != nil {
		return nil, fmt.Errorf("trace: bad header %q: %w", header, err)
	}
	return &Reader{s: s, nTasks: tasks, nThreads: threads, duration: dur, line: 1}, nil
}

// Tasks returns the task count declared in the header.
func (tr *Reader) Tasks() int { return tr.nTasks }

// Threads returns the per-task thread count declared in the header.
func (tr *Reader) Threads() int { return tr.nThreads }

// DurationNs returns the duration declared in the header.
func (tr *Reader) DurationNs() uint64 { return tr.duration }

// Next returns the next record, or io.EOF at end of trace.
func (tr *Reader) Next() (Record, error) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", tr.line, err)
		}
		return rec, nil
	}
	if err := tr.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

func parseLine(line string) (Record, error) {
	parts := strings.Split(line, ":")
	// 2:cpu:appl:task:thread:time:type:value[...]
	if len(parts) < 8 {
		return Record{}, fmt.Errorf("short record %q", line)
	}
	if parts[0] != "2" {
		return Record{}, fmt.Errorf("unsupported record kind %q", parts[0])
	}
	if (len(parts)-6)%2 != 0 {
		return Record{}, fmt.Errorf("odd type/value list in %q", line)
	}
	task, err := strconv.Atoi(parts[3])
	if err != nil {
		return Record{}, fmt.Errorf("bad task: %w", err)
	}
	thread, err := strconv.Atoi(parts[4])
	if err != nil {
		return Record{}, fmt.Errorf("bad thread: %w", err)
	}
	tns, err := strconv.ParseUint(parts[5], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad time: %w", err)
	}
	rec := Record{TimeNs: tns, Task: task, Thread: thread}
	for i := 6; i < len(parts); i += 2 {
		typ, err := strconv.ParseUint(parts[i], 10, 32)
		if err != nil {
			return Record{}, fmt.Errorf("bad type: %w", err)
		}
		val, err := strconv.ParseInt(parts[i+1], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad value: %w", err)
		}
		rec.Pairs = append(rec.Pairs, TypeValue{Type: uint32(typ), Value: val})
	}
	return rec, nil
}

// ReadAll drains a reader into a slice.
func ReadAll(tr *Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// recordLess orders records by (time, task, thread) — the merge key.
func recordLess(a, b *Record) bool {
	if a.TimeNs != b.TimeNs {
		return a.TimeNs < b.TimeNs
	}
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	return a.Thread < b.Thread
}

// Merge combines several record streams into one chronologically sorted
// stream (stable across equal timestamps by input order, then task/thread).
// Each input stream is first stably sorted on its own (monitor logs are
// mostly chronological but buffered PEBS drains append sample records out
// of order; already-sorted streams are detected and left alone), then the
// k sorted streams are combined with a k-way heap merge — O(n log k)
// instead of the O(n log n) of re-sorting the concatenation, which is what
// this replaced. Equal keys resolve to the lowest input stream first, and
// per-stream order is preserved, so the output is byte-identical to the
// old concatenate-and-stable-sort. It materializes the inputs; traces here
// are analysis-sized, not production-sized.
func Merge(streams ...[]Record) []Record {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	// Copy each stream into one backing buffer and sort the segments that
	// need it (the inputs are the monitors' live logs and must not move).
	buf := make([]Record, 0, total)
	segs := make([][]Record, 0, len(streams))
	for _, s := range streams {
		if len(s) == 0 {
			continue
		}
		start := len(buf)
		buf = append(buf, s...)
		seg := buf[start : start+len(s)]
		sorted := true
		for i := 1; i < len(seg); i++ {
			if recordLess(&seg[i], &seg[i-1]) {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(seg, func(i, j int) bool { return recordLess(&seg[i], &seg[j]) })
		}
		segs = append(segs, seg)
	}
	if len(segs) == 1 {
		return segs[0]
	}
	// K-way merge via a binary heap of stream heads, keyed by (record key,
	// stream index) so ties pop from the lowest stream — concatenation
	// order, matching the old stable sort.
	heap := make([]int, 0, len(segs)) // heap of segment indices
	less := func(a, b int) bool {
		ra, rb := &segs[a][0], &segs[b][0]
		if recordLess(ra, rb) {
			return true
		}
		if recordLess(rb, ra) {
			return false
		}
		return a < b
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := range segs {
		heap = append(heap, i)
		up(len(heap) - 1)
	}
	out := make([]Record, 0, total)
	for len(heap) > 0 {
		s := heap[0]
		out = append(out, segs[s][0])
		segs[s] = segs[s][1:]
		if len(segs[s]) == 0 {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}
