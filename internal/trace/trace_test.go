package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{TimeNs: 100, Task: 1, Thread: 1, Pairs: []TypeValue{{TypeRegion, 5}}},
		{TimeNs: 250, Task: 1, Thread: 1, Pairs: []TypeValue{
			{TypeSampleAddr, 0x1000}, {TypeSampleLatency, 230}, {TypeSampleSource, 3}}},
		{TimeNs: 300, Task: 1, Thread: 1, Pairs: []TypeValue{{TypeRegion, 0}}},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Errorf("Records = %d", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks() != 1 || r.Threads() != 2 || r.DurationNs() != 300 {
		t.Errorf("header = %d/%d/%d", r.Tasks(), r.Threads(), r.DurationNs())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, sampleRecords())
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, 0, 1, 0); err == nil {
		t.Error("zero tasks accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 1, 0)
	if err := w.Write(Record{TimeNs: 1, Task: 1, Thread: 1}); err == nil {
		t.Error("empty pairs accepted")
	}
	if err := w.Write(Record{TimeNs: 1, Task: 0, Thread: 1,
		Pairs: []TypeValue{{1, 1}}}); err == nil {
		t.Error("task 0 accepted")
	}
	// Time regression on the same thread rejected.
	ok := Record{TimeNs: 100, Task: 1, Thread: 1, Pairs: []TypeValue{{1, 1}}}
	if err := w.Write(ok); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.TimeNs = 50
	if err := w.Write(bad); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("regression err = %v", err)
	}
	// Regression on another thread is fine (independent clocks merged later).
	other := Record{TimeNs: 50, Task: 1, Thread: 2, Pairs: []TypeValue{{1, 1}}}
	if err := w.Write(other); err != nil {
		t.Errorf("cross-thread earlier time rejected: %v", err)
	}
	w.Close()
	if err := w.Write(ok); err == nil {
		t.Error("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewReader(strings.NewReader("garbage\n")); err == nil {
		t.Error("bad header accepted")
	}
	badBodies := []string{
		"1:1:1:1:1:100:1:1",                     // unsupported kind
		"2:1:1:1:1:100:7",                       // odd pairs
		"2:1:1",                                 // short
		"2:1:1:x:1:100:1:1",                     // bad task
		"2:1:1:1:1:abc:1:1",                     // bad time
		"2:1:1:1:1:100:999999999999999999999:1", // bad type
	}
	for _, body := range badBodies {
		r, err := NewReader(strings.NewReader("#Paraver (0):1:1\n" + body + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("body %q accepted", body)
		}
	}
	// Comments and blank lines are skipped.
	r, _ := NewReader(strings.NewReader("#Paraver (0):1:1\n\n# comment\n2:1:1:1:1:5:1:2\n"))
	rec, err := r.Next()
	if err != nil || rec.TimeNs != 5 {
		t.Errorf("skipping comments: %+v, %v", rec, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("EOF expected, got %v", err)
	}
}

func TestRecordGetHas(t *testing.T) {
	r := sampleRecords()[1]
	v, ok := r.Get(TypeSampleLatency)
	if !ok || v != 230 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if r.Has(TypeRegion) {
		t.Error("Has false positive")
	}
	if _, ok := r.Get(TypeRegion); ok {
		t.Error("Get false positive")
	}
}

func TestMergeSortsStably(t *testing.T) {
	a := []Record{
		{TimeNs: 10, Task: 1, Thread: 1, Pairs: []TypeValue{{1, 1}}},
		{TimeNs: 30, Task: 1, Thread: 1, Pairs: []TypeValue{{1, 2}}},
	}
	b := []Record{
		{TimeNs: 5, Task: 1, Thread: 2, Pairs: []TypeValue{{1, 3}}},
		{TimeNs: 10, Task: 1, Thread: 2, Pairs: []TypeValue{{1, 4}}},
		{TimeNs: 40, Task: 1, Thread: 2, Pairs: []TypeValue{{1, 5}}},
	}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d records", len(m))
	}
	times := []uint64{5, 10, 10, 30, 40}
	for i, r := range m {
		if r.TimeNs != times[i] {
			t.Errorf("merge order wrong at %d: %d", i, r.TimeNs)
		}
	}
	// Equal timestamps ordered by thread.
	if m[1].Thread != 1 || m[2].Thread != 2 {
		t.Error("tie-break by thread failed")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := Merge(sampleRecords())
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 1, 2, 300, recs); err != nil {
		t.Fatal(err)
	}
	nt, nth, dur, got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nt != 1 || nth != 2 || dur != 300 {
		t.Errorf("header = %d/%d/%d", nt, nth, dur)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("binary round trip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func TestBinaryRejectsUnsorted(t *testing.T) {
	recs := []Record{
		{TimeNs: 100, Task: 1, Thread: 1, Pairs: []TypeValue{{1, 1}}},
		{TimeNs: 50, Task: 1, Thread: 1, Pairs: []TypeValue{{1, 1}}},
	}
	if err := WriteBinary(io.Discard, 1, 1, 0, recs); err == nil {
		t.Error("unsorted records accepted")
	}
}

func TestBinaryBadInput(t *testing.T) {
	if _, _, _, _, err := ReadBinary(strings.NewReader("NOPE")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, _, _, _, err := ReadBinary(strings.NewReader("BS")); err == nil {
		t.Error("truncated magic accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	WriteBinary(&buf, 1, 1, 0, Merge(sampleRecords()))
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, _, _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, 0, n)
		now := uint64(0)
		for i := 0; i < int(n); i++ {
			now += uint64(rng.Intn(1000))
			rec := Record{TimeNs: now, Task: 1 + rng.Intn(3), Thread: 1 + rng.Intn(2)}
			for j := 0; j <= rng.Intn(4); j++ {
				rec.Pairs = append(rec.Pairs, TypeValue{
					Type:  uint32(rng.Intn(1 << 28)),
					Value: rng.Int63n(1<<40) - 1<<39, // negative values too
				})
			}
			recs = append(recs, rec)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, 3, 2, now, recs); err != nil {
			return false
		}
		_, _, _, got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !reflect.DeepEqual(got[i], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPCFRoundTrip(t *testing.T) {
	l := NewLabels()
	l.SetType(TypeRegion, "User function")
	l.SetValue(TypeRegion, 1, "ComputeSPMV_ref")
	l.SetValue(TypeRegion, 2, "ComputeSYMGS_ref")
	l.SetType(TypeSampleSource, "Data source")
	l.SetValue(TypeSampleSource, 0, "L1")
	l.SetValue(TypeSampleSource, 3, "DRAM")
	l.SetType(TypeSampleAddr, "Sampled address")

	var buf bytes.Buffer
	if err := l.WritePCF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeName(TypeRegion) != "User function" {
		t.Errorf("TypeName = %q", got.TypeName(TypeRegion))
	}
	if got.ValueName(TypeRegion, 2) != "ComputeSYMGS_ref" {
		t.Errorf("ValueName = %q", got.ValueName(TypeRegion, 2))
	}
	if got.ValueName(TypeSampleSource, 3) != "DRAM" {
		t.Errorf("source label = %q", got.ValueName(TypeSampleSource, 3))
	}
	// Fallbacks.
	if got.TypeName(999) != "type_999" {
		t.Errorf("fallback type name = %q", got.TypeName(999))
	}
	if got.ValueName(TypeRegion, 42) != "42" {
		t.Errorf("fallback value name = %q", got.ValueName(TypeRegion, 42))
	}
}

func TestPCFParseErrors(t *testing.T) {
	bad := []string{
		"VALUES\n1 x\n",                   // VALUES before type
		"EVENT_TYPE\n0 12\n",              // short type line
		"EVENT_TYPE\n0 xx label\n",        // bad type number
		"EVENT_TYPE\n0 1 ok\nVALUES\nz\n", // bad value line
	}
	for _, s := range bad {
		if _, err := ParsePCF(strings.NewReader(s)); err == nil {
			t.Errorf("pcf %q accepted", s)
		}
	}
	// Labels with spaces survive.
	l := NewLabels()
	l.SetType(1, "User function name")
	l.SetValue(1, 1, "foo bar (baz.c:10)")
	var buf bytes.Buffer
	l.WritePCF(&buf)
	got, err := ParsePCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ValueName(1, 1) != "foo bar (baz.c:10)" {
		t.Errorf("spaced label = %q", got.ValueName(1, 1))
	}
}
