package workloads

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/extrae"
)

// SpMV is a CSR sparse matrix-vector multiply y = A·x, with A the 7-point
// stencil operator on an NX×NY×NZ grid (diagonal 6, off-diagonals -1). It
// is the classic memory-bound kernel between STREAM and random access:
// values and column indices stream linearly, while the x gather hops by
// ±1, ±NX and ±NX·NY rows — short-range irregularity the caches mostly
// absorb, exactly the access mix of HPCG's SpMV phase.
type SpMV struct {
	// NX, NY, NZ are the grid dimensions; rows = NX·NY·NZ.
	NX, NY, NZ int

	region extrae.Region
	rowPtr []int32
	cols   []int32
	vals   []float64
	x, y   []float64

	valsAddr, colsAddr uint64
	xAddr, yAddr       uint64
	ipVals, ipCols     uint64
	ipX, ipY           uint64
}

// NewSpMV returns the 7-point stencil SpMV on an nx×ny×nz grid.
func NewSpMV(nx, ny, nz int) *SpMV { return &SpMV{NX: nx, NY: ny, NZ: nz} }

// Name implements Workload.
func (s *SpMV) Name() string { return "spmv_csr" }

// Region implements Workload.
func (s *SpMV) Region() extrae.Region { return s.region }

// Rows returns the matrix row count.
func (s *SpMV) Rows() int { return s.NX * s.NY * s.NZ }

// Setup implements Workload: build the CSR structure and allocate the
// instrumented arrays (values, column indices, x and y).
func (s *SpMV) Setup(ctx *Ctx) error {
	if s.NX <= 0 || s.NY <= 0 || s.NZ <= 0 {
		return fmt.Errorf("workloads: spmv needs positive grid dims")
	}
	fn, err := ctx.Bin.AddFunction("spmv_csr", "spmv.c", 50, 12)
	if err != nil {
		return err
	}
	if s.ipVals, err = fn.IPForLine(54); err != nil {
		return err
	}
	if s.ipCols, err = fn.IPForLine(55); err != nil {
		return err
	}
	if s.ipX, err = fn.IPForLine(56); err != nil {
		return err
	}
	if s.ipY, err = fn.IPForLine(57); err != nil {
		return err
	}
	s.region = ctx.Mon.RegisterRegion("spmv_csr")

	n := s.Rows()
	s.rowPtr = make([]int32, n+1)
	s.cols = s.cols[:0]
	s.vals = s.vals[:0]
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				row := (z*s.NY+y)*s.NX + x
				s.rowPtr[row] = int32(len(s.cols))
				add := func(col int, v float64) {
					s.cols = append(s.cols, int32(col))
					s.vals = append(s.vals, v)
				}
				if z > 0 {
					add(row-s.NX*s.NY, -1)
				}
				if y > 0 {
					add(row-s.NX, -1)
				}
				if x > 0 {
					add(row-1, -1)
				}
				add(row, 6)
				if x < s.NX-1 {
					add(row+1, -1)
				}
				if y < s.NY-1 {
					add(row+s.NX, -1)
				}
				if z < s.NZ-1 {
					add(row+s.NX*s.NY, -1)
				}
			}
		}
	}
	s.rowPtr[n] = int32(len(s.cols))

	allocIP, err := fn.IPForLine(51)
	if err != nil {
		return err
	}
	ctx.Mon.PushFrame(allocIP)
	defer ctx.Mon.PopFrame()
	if s.valsAddr, err = ctx.Mon.Alloc(uint64(len(s.vals)) * 8); err != nil {
		return err
	}
	if s.colsAddr, err = ctx.Mon.Alloc(uint64(len(s.cols)) * 4); err != nil {
		return err
	}
	if s.xAddr, err = ctx.Mon.Alloc(uint64(n) * 8); err != nil {
		return err
	}
	if s.yAddr, err = ctx.Mon.Alloc(uint64(n) * 8); err != nil {
		return err
	}
	s.x = make([]float64, n)
	s.y = make([]float64, n)
	for i := range s.x {
		s.x[i] = 1
	}
	return nil
}

// Run implements Workload.
func (s *SpMV) Run(ctx *Ctx, iters int) error {
	return s.RunPartition(ctx, iters, 0, s.Rows())
}

// Elements implements PartitionedWorkload: the partitionable unit is a
// matrix row.
func (s *SpMV) Elements() int { return s.Rows() }

// RunPartition implements PartitionedWorkload: y = A·x over rows [lo, hi).
// Values and columns stream through the batched issue path; the x gather
// is one indexed load per nonzero. x is read-only and the y rows are
// disjoint per block, so concurrent partitions are race-free.
func (s *SpMV) RunPartition(ctx *Ctx, iters int, lo, hi int) error {
	return s.RunPartitionRange(ctx, 0, iters, lo, hi)
}

// RunPartitionRange implements ResumableWorkload. y = A·x is recomputed
// from scratch each pass, so iterations are independent.
func (s *SpMV) RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error {
	core := ctx.Core
	for it := startIter; it < endIter; it++ {
		ctx.Mon.EnterRegion(s.region)
		for i := lo; i < hi; i++ {
			b, e := s.rowPtr[i], s.rowPtr[i+1]
			nnz := int(e - b)
			// Stack-allocated batch: partitions run concurrently on a
			// Machine, so the runs must not live on the shared struct.
			runs := [2]cpu.LineRun{
				{IP: s.ipVals, Base: s.valsAddr + uint64(b)*8, Stride: 8, Size: 8, Count: nnz},
				{IP: s.ipCols, Base: s.colsAddr + uint64(b)*4, Stride: 4, Size: 4, Count: nnz},
			}
			core.IssueRuns(runs[:])
			var sum float64
			for k := b; k < e; k++ {
				col := s.cols[k]
				core.Load(s.ipX, s.xAddr+uint64(col)*8, 8)
				sum += s.vals[k] * s.x[col]
				core.Compute(2)
			}
			s.y[i] = sum
			core.Store(s.ipY, s.yAddr+uint64(i)*8, 8)
		}
		ctx.Mon.ExitRegion(s.region)
	}
	return nil
}

// Value returns y[i] after Run.
func (s *SpMV) Value(i int) float64 { return s.y[i] }

// Expected returns the stencil row sum for row i with x ≡ 1: the diagonal
// 6 minus one per present neighbour.
func (s *SpMV) Expected(i int) float64 {
	return float64(6 - (int(s.rowPtr[i+1]) - int(s.rowPtr[i]) - 1))
}

// Interface conformance: every synthetic workload partitions and resumes.
var (
	_ ResumableWorkload = (*Stream)(nil)
	_ ResumableWorkload = (*RandomAccess)(nil)
	_ ResumableWorkload = (*PointerChase)(nil)
	_ ResumableWorkload = (*MatMul)(nil)
	_ ResumableWorkload = (*SpMV)(nil)
)
