// Package workloads provides small synthetic kernels with well-understood
// memory behaviour — streaming, random access, pointer chasing and a dense
// matrix multiply. They validate the monitoring and folding stack against
// known ground truth (STREAM must show linear sweeps and high bandwidth;
// random access must show DRAM-dominated latencies) and serve as the
// quickstart examples.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/prog"
)

// Ctx bundles the simulated machine a workload runs on.
type Ctx struct {
	Core *cpu.Core
	Mon  *extrae.Monitor
	Bin  *prog.Binary
}

// Workload is a runnable instrumented kernel.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Setup registers code in the binary and allocates data. It must be
	// called once, before monitoring starts.
	Setup(ctx *Ctx) error
	// Run executes iters instrumented iterations.
	Run(ctx *Ctx, iters int) error
	// Region returns the foldable per-iteration region id (valid after
	// Setup).
	Region() extrae.Region
}

// PartitionedWorkload is a Workload whose per-iteration work splits into
// disjoint element ranges, one per simulated hardware thread — the
// OpenMP-style static partitioning a multi-core Machine drives. Each
// thread calls RunPartition with its own Ctx (its core and monitor) and
// its static block; the element data is shared, the blocks are disjoint,
// so concurrent partitions are race-free by construction.
type PartitionedWorkload interface {
	Workload
	// Elements returns the partitionable element count (valid after Setup).
	Elements() int
	// RunPartition executes iters instrumented iterations over elements
	// [lo, hi). Run(ctx, iters) must equal RunPartition(ctx, iters, 0,
	// Elements()).
	RunPartition(ctx *Ctx, iters int, lo, hi int) error
}

// ResumableWorkload is a PartitionedWorkload that can execute an arbitrary
// iteration window, reconstructing any per-partition state (such as an RNG
// position) from the start iteration. This is what lets the checkpointed
// run drivers stop between iterations and continue later: running
// [0, k) then [k, n) must be indistinguishable — in simulated accesses,
// not just in results — from running [0, n) in one call.
type ResumableWorkload interface {
	PartitionedWorkload
	// RunPartitionRange executes instrumented iterations [startIter,
	// endIter) over elements [lo, hi). RunPartition(ctx, iters, lo, hi)
	// must equal RunPartitionRange(ctx, 0, iters, lo, hi).
	RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error
}

// Stream is the STREAM triad: a[i] = b[i] + s*c[i] over N doubles.
type Stream struct {
	// N is the number of elements per array.
	N int
	// Scale is the triad scalar.
	Scale float64

	region              extrae.Region
	a, b, c             []float64
	aAddr, bAddr, cAddr uint64
	ipLoadB, ipLoadC    uint64
	ipStoreA            uint64
}

// NewStream returns a triad over n-element arrays.
func NewStream(n int) *Stream { return &Stream{N: n, Scale: 3.0} }

// Name implements Workload.
func (s *Stream) Name() string { return "stream_triad" }

// Region implements Workload.
func (s *Stream) Region() extrae.Region { return s.region }

// Setup implements Workload.
func (s *Stream) Setup(ctx *Ctx) error {
	if s.N <= 0 {
		return fmt.Errorf("workloads: stream N must be positive")
	}
	fn, err := ctx.Bin.AddFunction("stream_triad", "stream.c", 10, 10)
	if err != nil {
		return err
	}
	if s.ipLoadB, err = fn.IPForLine(12); err != nil {
		return err
	}
	if s.ipLoadC, err = fn.IPForLine(13); err != nil {
		return err
	}
	if s.ipStoreA, err = fn.IPForLine(14); err != nil {
		return err
	}
	s.region = ctx.Mon.RegisterRegion("stream_triad")
	alloc := func(name string) ([]float64, uint64, error) {
		ip, err := fn.IPForLine(11)
		if err != nil {
			return nil, 0, err
		}
		ctx.Mon.PushFrame(ip)
		defer ctx.Mon.PopFrame()
		addr, err := ctx.Mon.Alloc(uint64(s.N) * 8)
		if err != nil {
			return nil, 0, err
		}
		return make([]float64, s.N), addr, nil
	}
	if s.a, s.aAddr, err = alloc("a"); err != nil {
		return err
	}
	if s.b, s.bAddr, err = alloc("b"); err != nil {
		return err
	}
	if s.c, s.cAddr, err = alloc("c"); err != nil {
		return err
	}
	for i := 0; i < s.N; i++ {
		s.b[i] = float64(i)
		s.c[i] = 1
	}
	return nil
}

// Run implements Workload. The triad's three arrays are swept in cache-line
// chunks through the core's batched stream-issue API: one hierarchy probe
// per line crossing instead of one per element.
func (s *Stream) Run(ctx *Ctx, iters int) error {
	return s.RunPartition(ctx, iters, 0, s.N)
}

// Elements implements PartitionedWorkload.
func (s *Stream) Elements() int { return s.N }

// RunPartition implements PartitionedWorkload: the triad over elements
// [lo, hi). Partitions touch disjoint slices of a, so a Machine's threads
// run their blocks concurrently without synchronization. Each line chunk
// is handed to the simulator as one three-run LineRun batch (loads of b
// and c, store of a) — the real arithmetic does not touch the simulator,
// so issuing the store run back-to-back with the loads preserves the
// simulated access order of the per-call form exactly.
func (s *Stream) RunPartition(ctx *Ctx, iters int, lo, hi int) error {
	return s.RunPartitionRange(ctx, 0, iters, lo, hi)
}

// RunPartitionRange implements ResumableWorkload. Iterations are
// independent (the triad recomputes a from b and c every pass), so any
// window runs as-is.
func (s *Stream) RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error {
	core := ctx.Core
	const chunk = 8 // float64s per 64-byte line
	for it := startIter; it < endIter; it++ {
		ctx.Mon.EnterRegion(s.region)
		for i := lo; i < hi; i += chunk {
			k := min(chunk, hi-i)
			for e := i; e < i+k; e++ {
				s.a[e] = s.b[e] + s.Scale*s.c[e]
			}
			// Stack-allocated batch: partitions run concurrently on a
			// Machine, so the runs must not live on the shared struct.
			runs := [3]cpu.LineRun{
				{IP: s.ipLoadB, Base: s.bAddr + uint64(i)*8, Stride: 8, Size: 8, Count: k},
				{IP: s.ipLoadC, Base: s.cAddr + uint64(i)*8, Stride: 8, Size: 8, Count: k},
				{IP: s.ipStoreA, Base: s.aAddr + uint64(i)*8, Stride: 8, Size: 8, Count: k, Store: true},
			}
			core.IssueRuns(runs[:])
			core.Compute(uint64(2 * k))
		}
		ctx.Mon.ExitRegion(s.region)
	}
	return nil
}

// Expected returns the triad result for element i (for verification).
func (s *Stream) Expected(i int) float64 { return float64(i) + s.Scale }

// Value returns a[i] after Run.
func (s *Stream) Value(i int) float64 { return s.a[i] }

// RandomAccess is a GUPS-like kernel: random read-modify-write updates over
// a table much larger than the caches.
type RandomAccess struct {
	// N is the table length in 8-byte words.
	N int
	// UpdatesPerIter is the number of updates per instrumented iteration
	// over the full table; partitions scale it by their block share.
	UpdatesPerIter int
	// Seed drives the index sequence.
	Seed int64

	region    extrae.Region
	table     []uint64
	tableAddr uint64
	ipLoad    uint64
	ipStore   uint64
}

// NewRandomAccess returns a GUPS kernel over an n-word table.
func NewRandomAccess(n, updates int, seed int64) *RandomAccess {
	return &RandomAccess{N: n, UpdatesPerIter: updates, Seed: seed}
}

// Name implements Workload.
func (r *RandomAccess) Name() string { return "random_access" }

// Region implements Workload.
func (r *RandomAccess) Region() extrae.Region { return r.region }

// Setup implements Workload.
func (r *RandomAccess) Setup(ctx *Ctx) error {
	if r.N <= 0 || r.UpdatesPerIter <= 0 {
		return fmt.Errorf("workloads: random access needs positive N and updates")
	}
	fn, err := ctx.Bin.AddFunction("random_access", "gups.c", 20, 10)
	if err != nil {
		return err
	}
	if r.ipLoad, err = fn.IPForLine(24); err != nil {
		return err
	}
	if r.ipStore, err = fn.IPForLine(25); err != nil {
		return err
	}
	r.region = ctx.Mon.RegisterRegion("random_access")
	ip, err := fn.IPForLine(21)
	if err != nil {
		return err
	}
	ctx.Mon.PushFrame(ip)
	r.tableAddr, err = ctx.Mon.Alloc(uint64(r.N) * 8)
	ctx.Mon.PopFrame()
	if err != nil {
		return err
	}
	r.table = make([]uint64, r.N)
	return nil
}

// Run implements Workload.
func (r *RandomAccess) Run(ctx *Ctx, iters int) error {
	return r.RunPartition(ctx, iters, 0, r.N)
}

// Elements implements PartitionedWorkload.
func (r *RandomAccess) Elements() int { return r.N }

// RunPartition implements PartitionedWorkload: random updates confined to
// table indices [lo, hi), with the per-iteration update count scaled by the
// block share. Each partition derives its own index stream from Seed+lo, so
// concurrent blocks write disjoint table slices without sharing an RNG.
func (r *RandomAccess) RunPartition(ctx *Ctx, iters int, lo, hi int) error {
	return r.RunPartitionRange(ctx, 0, iters, lo, hi)
}

// RunPartitionRange implements ResumableWorkload. The index stream is the
// only cross-iteration state; it is repositioned by redrawing the first
// startIter iterations' indices (rejection sampling makes the consumed
// generator state depend on the drawn values, so skipping must replay the
// identical Intn calls, not jump the generator).
func (r *RandomAccess) RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error {
	core := ctx.Core
	rng := rand.New(rand.NewSource(r.Seed + int64(lo)))
	updates := r.UpdatesPerIter * (hi - lo) / r.N
	for u := 0; u < startIter*updates; u++ {
		rng.Intn(hi - lo)
	}
	for it := startIter; it < endIter; it++ {
		ctx.Mon.EnterRegion(r.region)
		for u := 0; u < updates; u++ {
			i := lo + rng.Intn(hi-lo)
			addr := r.tableAddr + uint64(i)*8
			core.Load(r.ipLoad, addr, 8)
			r.table[i] ^= uint64(i)*2654435761 + 1
			core.Store(r.ipStore, addr, 8)
			core.Compute(2)
		}
		ctx.Mon.ExitRegion(r.region)
	}
	return nil
}

// PointerChase traverses a shuffled singly linked list: every access
// depends on the previous one, exposing full memory latency.
type PointerChase struct {
	// N is the number of list nodes.
	N int
	// Seed drives the node permutation.
	Seed int64

	region   extrae.Region
	next     []int32
	baseAddr uint64
	ipLoad   uint64
}

// NewPointerChase returns an n-node chase.
func NewPointerChase(n int, seed int64) *PointerChase {
	return &PointerChase{N: n, Seed: seed}
}

// Name implements Workload.
func (p *PointerChase) Name() string { return "pointer_chase" }

// Region implements Workload.
func (p *PointerChase) Region() extrae.Region { return p.region }

// Setup implements Workload.
func (p *PointerChase) Setup(ctx *Ctx) error {
	if p.N <= 1 {
		return fmt.Errorf("workloads: pointer chase needs N > 1")
	}
	fn, err := ctx.Bin.AddFunction("pointer_chase", "chase.c", 30, 8)
	if err != nil {
		return err
	}
	if p.ipLoad, err = fn.IPForLine(33); err != nil {
		return err
	}
	p.region = ctx.Mon.RegisterRegion("pointer_chase")
	ip, err := fn.IPForLine(31)
	if err != nil {
		return err
	}
	ctx.Mon.PushFrame(ip)
	p.baseAddr, err = ctx.Mon.Alloc(uint64(p.N) * 8)
	ctx.Mon.PopFrame()
	if err != nil {
		return err
	}
	// Sattolo's algorithm: one cycle through all nodes.
	perm := make([]int32, p.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := p.N - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	p.next = perm
	return nil
}

// Run implements Workload.
func (p *PointerChase) Run(ctx *Ctx, iters int) error {
	return p.RunPartition(ctx, iters, 0, p.N)
}

// Elements implements PartitionedWorkload.
func (p *PointerChase) Elements() int { return p.N }

// RunPartition implements PartitionedWorkload: chase hi-lo steps along the
// global cycle starting at node lo. The next-pointer array is read-only, so
// partitions walking overlapping stretches of the cycle stay race-free;
// each block still issues one dependent load per step.
func (p *PointerChase) RunPartition(ctx *Ctx, iters int, lo, hi int) error {
	return p.RunPartitionRange(ctx, 0, iters, lo, hi)
}

// RunPartitionRange implements ResumableWorkload. Every iteration restarts
// the walk at node lo, so iterations are independent.
func (p *PointerChase) RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error {
	core := ctx.Core
	for it := startIter; it < endIter; it++ {
		ctx.Mon.EnterRegion(p.region)
		node := int32(lo)
		for step := lo; step < hi; step++ {
			core.Load(p.ipLoad, p.baseAddr+uint64(node)*8, 8)
			node = p.next[node]
		}
		ctx.Mon.ExitRegion(p.region)
	}
	return nil
}

// MatMul is a naive dense C = A×B multiply (ijk order).
type MatMul struct {
	// N is the matrix dimension.
	N int

	region        extrae.Region
	a, b, c       []float64
	aA, bA, cA    uint64
	ipA, ipB, ipC uint64
}

// NewMatMul returns an N×N multiply.
func NewMatMul(n int) *MatMul { return &MatMul{N: n} }

// Name implements Workload.
func (m *MatMul) Name() string { return "matmul" }

// Region implements Workload.
func (m *MatMul) Region() extrae.Region { return m.region }

// Setup implements Workload.
func (m *MatMul) Setup(ctx *Ctx) error {
	if m.N <= 0 {
		return fmt.Errorf("workloads: matmul N must be positive")
	}
	fn, err := ctx.Bin.AddFunction("matmul", "matmul.c", 40, 12)
	if err != nil {
		return err
	}
	if m.ipA, err = fn.IPForLine(44); err != nil {
		return err
	}
	if m.ipB, err = fn.IPForLine(45); err != nil {
		return err
	}
	if m.ipC, err = fn.IPForLine(46); err != nil {
		return err
	}
	m.region = ctx.Mon.RegisterRegion("matmul")
	ip, err := fn.IPForLine(41)
	if err != nil {
		return err
	}
	n := m.N
	ctx.Mon.PushFrame(ip)
	defer ctx.Mon.PopFrame()
	if m.aA, err = ctx.Mon.Alloc(uint64(n*n) * 8); err != nil {
		return err
	}
	if m.bA, err = ctx.Mon.Alloc(uint64(n*n) * 8); err != nil {
		return err
	}
	if m.cA, err = ctx.Mon.Alloc(uint64(n*n) * 8); err != nil {
		return err
	}
	m.a = make([]float64, n*n)
	m.b = make([]float64, n*n)
	m.c = make([]float64, n*n)
	for i := range m.a {
		m.a[i] = 1
		m.b[i] = 2
	}
	return nil
}

// Run implements Workload.
func (m *MatMul) Run(ctx *Ctx, iters int) error {
	return m.RunPartition(ctx, iters, 0, m.N)
}

// Elements implements PartitionedWorkload: the partitionable unit is a row
// of C.
func (m *MatMul) Elements() int { return m.N }

// RunPartition implements PartitionedWorkload: compute rows [lo, hi) of C.
// A and B are read-only and the C rows are disjoint per block, so the
// OpenMP-style i-loop partitioning is race-free.
func (m *MatMul) RunPartition(ctx *Ctx, iters int, lo, hi int) error {
	return m.RunPartitionRange(ctx, 0, iters, lo, hi)
}

// RunPartitionRange implements ResumableWorkload. Each iteration recomputes
// C from the constant A and B, so iterations are independent.
func (m *MatMul) RunPartitionRange(ctx *Ctx, startIter, endIter int, lo, hi int) error {
	core := ctx.Core
	n := m.N
	for it := startIter; it < endIter; it++ {
		ctx.Mon.EnterRegion(m.region)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					core.Load(m.ipA, m.aA+uint64(i*n+k)*8, 8)
					core.Load(m.ipB, m.bA+uint64(k*n+j)*8, 8)
					sum += m.a[i*n+k] * m.b[k*n+j]
					core.Compute(2)
				}
				m.c[i*n+j] = sum
				core.Store(m.ipC, m.cA+uint64(i*n+j)*8, 8)
			}
		}
		ctx.Mon.ExitRegion(m.region)
	}
	return nil
}

// Value returns C[i][j] after Run.
func (m *MatMul) Value(i, j int) float64 { return m.c[i*m.N+j] }
