package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/memhier"
	"repro/internal/pebs"
	"repro/internal/prog"
)

func newCtx(t *testing.T) *Ctx {
	t.Helper()
	h, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.NewBinary()
	as := prog.NewAddressSpace(0x700000000000)
	cfg := extrae.DefaultConfig()
	cfg.MuxQuantumNs = 0
	cfg.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.PEBS.Period = 100
	cfg.PEBS.Randomize = false
	cfg.PEBS.LatencyThreshold = 0
	mon, err := extrae.New(cfg, core, bin, as)
	if err != nil {
		t.Fatal(err)
	}
	return &Ctx{Core: core, Mon: mon, Bin: bin}
}

func TestStreamMathAndNames(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(1 << 12)
	if s.Name() != "stream_triad" {
		t.Errorf("name = %q", s.Name())
	}
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N; i += 100 {
		if s.Value(i) != s.Expected(i) {
			t.Fatalf("a[%d] = %g, want %g", i, s.Value(i), s.Expected(i))
		}
	}
	if s.Region() == 0 {
		t.Error("region not registered")
	}
}

func TestStreamValidation(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(0)
	if err := s.Setup(ctx); err == nil {
		t.Error("zero N accepted")
	}
}

func TestStreamLoadStoreRatio(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(1 << 12)
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	p := ctx.Core.PMU()
	loads := p.True(cpu.CtrLoads)
	stores := p.True(cpu.CtrStores)
	if loads != 2*stores {
		t.Errorf("loads/stores = %d/%d, triad is exactly 2:1", loads, stores)
	}
}

func TestRandomAccessDRAMBound(t *testing.T) {
	ctx := newCtx(t)
	// 8M words = 64 MiB, far larger than the 2.5 MiB L3.
	r := NewRandomAccess(1<<23, 20000, 7)
	if r.Name() != "random_access" {
		t.Errorf("name = %q", r.Name())
	}
	if err := r.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	h := ctx.Core.Hierarchy()
	l1 := h.LevelStats(0)
	if l1.MissRatio() < 0.3 {
		t.Errorf("random access L1 miss ratio = %.3f, want high", l1.MissRatio())
	}
	if h.DRAMAccesses() == 0 {
		t.Error("no DRAM traffic on a 64 MiB random workload")
	}
}

func TestRandomAccessValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewRandomAccess(0, 1, 1).Setup(ctx); err == nil {
		t.Error("zero table accepted")
	}
	ctx2 := newCtx(t)
	if err := NewRandomAccess(10, 0, 1).Setup(ctx2); err == nil {
		t.Error("zero updates accepted")
	}
}

func TestPointerChaseVisitsEveryNode(t *testing.T) {
	ctx := newCtx(t)
	p := NewPointerChase(4096, 3)
	if p.Name() != "pointer_chase" {
		t.Errorf("name = %q", p.Name())
	}
	if err := p.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	// Sattolo permutation: following next from 0 for N steps returns to 0
	// having visited every node exactly once.
	seen := make(map[int32]bool)
	node := int32(0)
	for i := 0; i < p.N; i++ {
		if seen[node] {
			t.Fatalf("node %d revisited at step %d", node, i)
		}
		seen[node] = true
		node = p.next[node]
	}
	if node != 0 {
		t.Error("chase did not return to start")
	}
	if err := p.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Core.PMU().True(cpu.CtrLoads); got != uint64(p.N) {
		t.Errorf("loads = %d, want %d", got, p.N)
	}
}

func TestPointerChaseValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewPointerChase(1, 1).Setup(ctx); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestMatMulMath(t *testing.T) {
	ctx := newCtx(t)
	m := NewMatMul(16)
	if m.Name() != "matmul" {
		t.Errorf("name = %q", m.Name())
	}
	if err := m.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// A all ones, B all twos: C[i][j] = N * 1 * 2 = 32.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if m.Value(i, j) != 32 {
				t.Fatalf("C[%d][%d] = %g, want 32", i, j, m.Value(i, j))
			}
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewMatMul(0).Setup(ctx); err == nil {
		t.Error("zero N accepted")
	}
}

func TestWorkloadsAreDistinctRegions(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(64)
	r := NewRandomAccess(64, 10, 1)
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Region() == r.Region() {
		t.Error("workloads share a region id")
	}
}
