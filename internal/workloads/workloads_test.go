package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/memhier"
	"repro/internal/pebs"
	"repro/internal/prog"
)

func newCtx(t *testing.T) *Ctx {
	t.Helper()
	h, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.NewBinary()
	as := prog.NewAddressSpace(0x700000000000)
	cfg := extrae.DefaultConfig()
	cfg.MuxQuantumNs = 0
	cfg.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.PEBS.Period = 100
	cfg.PEBS.Randomize = false
	cfg.PEBS.LatencyThreshold = 0
	mon, err := extrae.New(cfg, core, bin, as)
	if err != nil {
		t.Fatal(err)
	}
	return &Ctx{Core: core, Mon: mon, Bin: bin}
}

func TestStreamMathAndNames(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(1 << 12)
	if s.Name() != "stream_triad" {
		t.Errorf("name = %q", s.Name())
	}
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N; i += 100 {
		if s.Value(i) != s.Expected(i) {
			t.Fatalf("a[%d] = %g, want %g", i, s.Value(i), s.Expected(i))
		}
	}
	if s.Region() == 0 {
		t.Error("region not registered")
	}
}

func TestStreamValidation(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(0)
	if err := s.Setup(ctx); err == nil {
		t.Error("zero N accepted")
	}
}

func TestStreamLoadStoreRatio(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(1 << 12)
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	p := ctx.Core.PMU()
	loads := p.True(cpu.CtrLoads)
	stores := p.True(cpu.CtrStores)
	if loads != 2*stores {
		t.Errorf("loads/stores = %d/%d, triad is exactly 2:1", loads, stores)
	}
}

func TestRandomAccessDRAMBound(t *testing.T) {
	ctx := newCtx(t)
	// 8M words = 64 MiB, far larger than the 2.5 MiB L3.
	r := NewRandomAccess(1<<23, 20000, 7)
	if r.Name() != "random_access" {
		t.Errorf("name = %q", r.Name())
	}
	if err := r.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	h := ctx.Core.Hierarchy()
	l1 := h.LevelStats(0)
	if l1.MissRatio() < 0.3 {
		t.Errorf("random access L1 miss ratio = %.3f, want high", l1.MissRatio())
	}
	if h.DRAMAccesses() == 0 {
		t.Error("no DRAM traffic on a 64 MiB random workload")
	}
}

func TestRandomAccessValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewRandomAccess(0, 1, 1).Setup(ctx); err == nil {
		t.Error("zero table accepted")
	}
	ctx2 := newCtx(t)
	if err := NewRandomAccess(10, 0, 1).Setup(ctx2); err == nil {
		t.Error("zero updates accepted")
	}
}

func TestPointerChaseVisitsEveryNode(t *testing.T) {
	ctx := newCtx(t)
	p := NewPointerChase(4096, 3)
	if p.Name() != "pointer_chase" {
		t.Errorf("name = %q", p.Name())
	}
	if err := p.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	// Sattolo permutation: following next from 0 for N steps returns to 0
	// having visited every node exactly once.
	seen := make(map[int32]bool)
	node := int32(0)
	for i := 0; i < p.N; i++ {
		if seen[node] {
			t.Fatalf("node %d revisited at step %d", node, i)
		}
		seen[node] = true
		node = p.next[node]
	}
	if node != 0 {
		t.Error("chase did not return to start")
	}
	if err := p.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Core.PMU().True(cpu.CtrLoads); got != uint64(p.N) {
		t.Errorf("loads = %d, want %d", got, p.N)
	}
}

func TestPointerChaseValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewPointerChase(1, 1).Setup(ctx); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestMatMulMath(t *testing.T) {
	ctx := newCtx(t)
	m := NewMatMul(16)
	if m.Name() != "matmul" {
		t.Errorf("name = %q", m.Name())
	}
	if err := m.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// A all ones, B all twos: C[i][j] = N * 1 * 2 = 32.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if m.Value(i, j) != 32 {
				t.Fatalf("C[%d][%d] = %g, want 32", i, j, m.Value(i, j))
			}
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewMatMul(0).Setup(ctx); err == nil {
		t.Error("zero N accepted")
	}
}

func TestWorkloadsAreDistinctRegions(t *testing.T) {
	ctx := newCtx(t)
	s := NewStream(64)
	r := NewRandomAccess(64, 10, 1)
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Region() == r.Region() {
		t.Error("workloads share a region id")
	}
}

func TestSpMVMath(t *testing.T) {
	ctx := newCtx(t)
	s := NewSpMV(8, 8, 8)
	if s.Name() != "spmv_csr" {
		t.Errorf("name = %q", s.Name())
	}
	if err := s.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// x ≡ 1: each row sums to 6 minus the number of present neighbours —
	// 0 for interior rows, positive on the boundary.
	interior := (1*8+1)*8 + 1 // (1,1,1)
	if s.Value(interior) != 0 {
		t.Errorf("interior row = %g, want 0", s.Value(interior))
	}
	if s.Value(0) != 3 { // corner has 3 neighbours
		t.Errorf("corner row = %g, want 3", s.Value(0))
	}
	for i := 0; i < s.Rows(); i++ {
		if s.Value(i) != s.Expected(i) {
			t.Fatalf("y[%d] = %g, want %g", i, s.Value(i), s.Expected(i))
		}
	}
}

func TestSpMVValidation(t *testing.T) {
	ctx := newCtx(t)
	if err := NewSpMV(0, 8, 8).Setup(ctx); err == nil {
		t.Error("zero grid dim accepted")
	}
}

// TestPartitionsCoverElements pins the partition contract for every
// workload at the workload level: running the partitions of a 3-way split
// one after another covers the full element range. For the deterministic
// sweeps (triad, SpMV, matmul) the outputs equal their closed forms; for
// random access the per-block update counts land (each block scales
// UpdatesPerIter by its share, so the 3-way total may round a few updates
// below one full Run's); for pointer chase the step counts sum to one full
// cycle. (Exact Run == RunPartition(0, N) equality through the whole stack
// is pinned by core's TestPartitionSingleThreadIdenticalToSession.)
func TestPartitionsCoverElements(t *testing.T) {
	run3 := func(t *testing.T, w PartitionedWorkload) *Ctx {
		t.Helper()
		ctx := newCtx(t)
		if err := w.Setup(ctx); err != nil {
			t.Fatal(err)
		}
		n := w.Elements()
		for p := 0; p < 3; p++ {
			lo, hi := p*n/3, (p+1)*n/3
			if err := w.RunPartition(ctx, 1, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return ctx
	}
	t.Run("stream", func(t *testing.T) {
		s := NewStream(1 << 10)
		run3(t, s)
		for i := 0; i < s.N; i++ {
			if s.Value(i) != s.Expected(i) {
				t.Fatalf("a[%d] = %g, want %g", i, s.Value(i), s.Expected(i))
			}
		}
	})
	t.Run("spmv", func(t *testing.T) {
		s := NewSpMV(6, 6, 6)
		run3(t, s)
		for i := 0; i < s.Rows(); i++ {
			if s.Value(i) != s.Expected(i) {
				t.Fatalf("y[%d] = %g, want %g", i, s.Value(i), s.Expected(i))
			}
		}
	})
	t.Run("matmul", func(t *testing.T) {
		m := NewMatMul(9)
		run3(t, m)
		for i := 0; i < 9; i++ {
			for j := 0; j < 9; j++ {
				if m.Value(i, j) != 18 {
					t.Fatalf("C[%d][%d] = %g, want 18", i, j, m.Value(i, j))
				}
			}
		}
	})
	t.Run("random_access", func(t *testing.T) {
		r := NewRandomAccess(1<<10, 300, 3)
		ctx := run3(t, r)
		// Each block performs UpdatesPerIter*(hi-lo)/N updates, one load
		// and one store each.
		var want uint64
		for p := 0; p < 3; p++ {
			lo, hi := p*r.N/3, (p+1)*r.N/3
			want += uint64(r.UpdatesPerIter * (hi - lo) / r.N)
		}
		if got := ctx.Core.PMU().True(cpu.CtrLoads); got != want {
			t.Errorf("loads = %d, want %d", got, want)
		}
		if got := ctx.Core.PMU().True(cpu.CtrStores); got != want {
			t.Errorf("stores = %d, want %d", got, want)
		}
	})
	t.Run("pointer_chase", func(t *testing.T) {
		p := NewPointerChase(1<<10, 3)
		ctx := run3(t, p)
		// The three arcs take hi-lo steps each: one full cycle of loads.
		if got := ctx.Core.PMU().True(cpu.CtrLoads); got != uint64(p.N) {
			t.Errorf("loads = %d, want %d", got, p.N)
		}
	})
}
